//! A recursive-descent JSON parser producing [`Value`] trees.

use crate::Error;
use serde::{Number, Value};
use std::collections::BTreeMap;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::msg(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self
            .peek()
            .ok_or_else(|| self.err("unexpected end of input"))?
        {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            b'"' => self.parse_string().map(Value::Str),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            c => Err(self.err(&format!("unexpected character `{}`", c as char))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.eat_keyword("\\u") {
                                    let lo = self.parse_hex4()?;
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    out.push(
                                        char::from_u32(c)
                                            .ok_or_else(|| self.err("bad surrogate pair"))?,
                                    );
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                out.push(
                                    char::from_u32(cp).ok_or_else(|| self.err("bad codepoint"))?,
                                );
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the sequence
                    // is valid; recover the full character.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(i) = stripped.parse::<u128>() {
                    return Ok(Value::Num(Number::Int(-(i as i128))));
                }
            } else if let Ok(u) = text.parse::<u128>() {
                return Ok(Value::Num(Number::UInt(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::Float(f)))
            .map_err(|_| self.err("bad number"))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }
}

/// Parses a complete JSON document into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}
