//! Suppression fixture: the same hazards as the rule fixtures, each
//! silenced by a well-formed `detlint::allow`. Must scan clean with five
//! suppressed findings and no unused-allow warnings.

use std::collections::HashMap;
use std::time::Instant;

pub fn debug_dump(agg: &HashMap<String, f64>) -> Vec<f64> {
    // detlint::allow(DL001, reason = "debug helper; output order is irrelevant")
    agg.values().copied().collect()
}

pub fn jitter() -> u64 {
    rand::random() // detlint::allow(DL002, reason = "backoff jitter, not experiment randomness")
}

pub fn diagnostics() -> f64 {
    let t0 = Instant::now(); // detlint::allow(DL003, reason = "log line only, never serialized into results")
    t0.elapsed().as_secs_f64()
}

pub fn tiny_total(xs: [f32; 4]) -> f32 {
    xs.iter().sum() // detlint::allow(DL004, reason = "fixed 4-element array, order is static")
}

pub fn bounded_parallel(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x.round()).sum() // detlint::allow(DL005, reason = "integral values; addition is exact")
}
