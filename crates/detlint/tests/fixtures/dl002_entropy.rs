//! DL002 fixture: RNG state from OS entropy or wall time.

use std::time::{SystemTime, UNIX_EPOCH};

// <explain:DL002:bad>
pub fn ambient_thread_rng() -> f64 {
    let mut rng = rand::thread_rng(); // fires: thread_rng
    rng.gen()
}
// </explain:DL002:bad>

pub fn entropy_seeded() -> StdRng {
    StdRng::from_entropy() // fires: from_entropy
}

pub fn global_random() -> u64 {
    rand::random() // fires: rand::random
}

pub fn os_rng_direct() -> u32 {
    let mut source = OsRng; // fires: OsRng
    source.next_u32()
}

pub fn time_seed() -> u64 {
    let seed = SystemTime::now().duration_since(UNIX_EPOCH).unwrap().as_nanos() as u64; // fires: time-derived seed
    seed
}
