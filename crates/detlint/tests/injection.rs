//! Injection tests: the dataflow rules catch hazards planted in copies
//! of real workspace modules.
//!
//! The workspace scans clean, so these tests are the proof the new rules
//! have teeth on real code shapes (not just synthetic fixtures): take a
//! shipping module verbatim, append a hazard of the kind the rule hunts,
//! and assert the scan flags exactly the injected lines — with the same
//! workspace config CI uses, loaded from `detlint.toml` itself.

use detlint::{Config, RuleId};

/// The real workspace config, so registry/exemptions match CI exactly.
fn workspace_config() -> Config {
    Config::parse(include_str!("../../../detlint.toml")).expect("detlint.toml parses")
}

fn lines_for(report: &detlint::ScanReport, rule: RuleId) -> Vec<u32> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

/// Scans `base`, asserts `rule` is quiet, then scans `base + injected`
/// and returns the lines (relative to the injection point) where `rule`
/// fired.
fn inject(path: &str, base: &str, injected: &str, rule: RuleId) -> Vec<u32> {
    let config = workspace_config();
    let before = detlint::scan_file(path, base, &config);
    assert!(
        lines_for(&before, rule).is_empty(),
        "{} already fires {} before injection: {:?}",
        path,
        rule.as_str(),
        before.findings
    );
    let base_lines = base.lines().count() as u32;
    let patched = format!("{base}\n{injected}");
    let after = detlint::scan_file(path, &patched, &config);
    lines_for(&after, rule)
        .into_iter()
        .map(|l| l - base_lines - 1)
        .collect()
}

#[test]
fn dl006_catches_unordered_sum_injected_into_runner() {
    let fired = inject(
        "crates/core/src/runner.rs",
        include_str!("../../core/src/runner.rs"),
        "fn injected_unordered_total(m: &std::collections::HashMap<u64, f64>) -> f64 {\n\
         \x20   let leaked: Vec<f64> = m.values().copied().collect();\n\
         \x20   let injected_total: f64 = leaked.iter().sum();\n\
         \x20   injected_total\n\
         }\n",
        RuleId::Dl006,
    );
    // Line 3 of the injected block: the sum over the hash-ordered copy.
    assert_eq!(fired, vec![3]);
}

#[test]
fn dl007_catches_draw_crossing_spawn_injected_into_fleet() {
    let fired = inject(
        "crates/core/src/fleet.rs",
        include_str!("../../core/src/fleet.rs"),
        "fn injected_jitter(rng: &mut noisescope_rng::StreamRng, scope: &std::thread::Scope<'_, '_>) {\n\
         \x20   let jitter = rng.next_u64();\n\
         \x20   scope.spawn(move || std::hint::black_box(jitter));\n\
         }\n",
        RuleId::Dl007,
    );
    // Line 3 of the injected block: the spawn capturing the draw.
    assert_eq!(fired, vec![3]);
}

#[test]
fn dl008_catches_unregistered_knob_injected_into_settings() {
    let fired = inject(
        "crates/core/src/settings.rs",
        include_str!("../../core/src/settings.rs"),
        "fn injected_rogue_knob() -> f64 {\n\
         \x20   let raw = std::env::var(\"NS_ROGUE_SCALE\").unwrap_or_default();\n\
         \x20   raw.parse::<f64>().unwrap_or(1.0)\n\
         }\n",
        RuleId::Dl008,
    );
    // Line 3 of the injected block: the unregistered knob hitting parse.
    assert_eq!(fired, vec![3]);
}

/// The registered knobs in settings.rs stay quiet under the workspace
/// registry, and becoming unregistered would fire: delete one name from
/// the registry and the scan must light up. Proves DL008's gate actually
/// guards the real Settings parser.
#[test]
fn dl008_registry_is_load_bearing_for_settings() {
    let src = include_str!("../../core/src/settings.rs");
    let full = workspace_config();
    let quiet = detlint::scan_file("crates/core/src/settings.rs", src, &full);
    assert!(
        lines_for(&quiet, RuleId::Dl008).is_empty(),
        "registered knobs must not fire: {:?}",
        quiet.findings
    );

    let mut pruned = full;
    pruned.registered_env.retain(|n| n != "NS_REPLICAS");
    let loud = detlint::scan_file("crates/core/src/settings.rs", src, &pruned);
    assert!(
        !lines_for(&loud, RuleId::Dl008).is_empty(),
        "deleting NS_REPLICAS from the registry must fire DL008"
    );
}
