//! Clean fixture: patterns that look adjacent to the hazards but are
//! deterministic. Must produce zero findings.

use std::collections::BTreeMap;

// <explain:DL001:good>
pub fn ordered_collect(agg: BTreeMap<String, f64>) -> Vec<f64> {
    agg.into_values().collect() // BTreeMap iterates in key order
}
// </explain:DL001:good>

pub fn sized_lookup(index: &HashMap<String, u32>, key: &str) -> Option<u32> {
    let n = index.len(); // size queries don't observe order
    index.get(key).copied().map(|v| v + n as u32)
}

pub fn integer_sum(counts: &[u64]) -> u64 {
    counts.iter().sum() // integer addition is associative
}

pub fn float_max(xs: &[f64]) -> f64 {
    xs.iter().fold(f64::MIN, |a, b| a.max(*b)) // max is order-insensitive
}

// <explain:DL002:good>
pub fn seeded_rng(seed: u64) -> SplitMix64 {
    SplitMix64::new(seed) // explicit seed, no ambient entropy
}
// </explain:DL002:good>

// <explain:DL004:good>
pub fn ordered_total(xs: &[f64]) -> f64 {
    sum_ordered_f64(xs) // fixed left-to-right order, run-stable bit pattern
}
// </explain:DL004:good>

// <explain:DL005:good>
pub fn sharded_total(parts: &[Vec<f64>]) -> f64 {
    // reduce each shard in index order, then combine in index order
    let per_shard: Vec<f64> = parts.iter().map(|p| sum_ordered_f64(p)).collect();
    sum_ordered_f64(&per_shard)
}
// </explain:DL005:good>
