//! The `detlint` binary: scans the workspace and reports hazards.
//!
//! ```text
//! detlint [--json | --sarif] [--root <dir>] [--config <file>]
//!         [--baseline <file>] [--write-baseline <file>] [--audit]
//!         [--cache <file>] [--no-cache] [--explain DLxxx] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean, `1` findings or malformed suppressions,
//! `2` usage / IO / config error.
//!
//! Incremental analysis is on by default: per-file results are cached in
//! `target/detlint-cache.json` keyed by content hash and config
//! fingerprint, so a rerun with no edits re-analyzes nothing. Cache
//! statistics go to stderr — stdout is bit-identical cold or warm.

use std::path::PathBuf;
use std::process::ExitCode;

use detlint::baseline::Baseline;
use detlint::cache::scan_workspace_cached;
use detlint::{config::Config, explain, find_workspace_root, report, sarif, RuleId};

const USAGE: &str = "detlint — determinism static analysis

USAGE: detlint [OPTIONS]

  --json                  machine-readable JSON report on stdout
  --sarif                 SARIF 2.1.0 report on stdout (for CI upload)
  --root <dir>            workspace root (default: nearest detlint.toml)
  --config <file>         config file (default: <root>/detlint.toml)
  --baseline <file>       grandfather findings recorded in <file>; only
                          new findings fail the gate
  --write-baseline <file> record current findings as the baseline, exit 0
  --audit                 stale allows become DL009 findings
  --cache <file>          incremental cache location
                          (default: <root>/target/detlint-cache.json)
  --no-cache              re-analyze every file
  --explain <rule>        print rationale and examples for DL001..DL009
  --list-rules            print the rule table

Scans every .rs file under the workspace root for determinism hazards
(DL001..DL009) and exits nonzero if any unsuppressed finding remains.";

struct Args {
    json: bool,
    sarif: bool,
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    audit: bool,
    cache: Option<PathBuf>,
    no_cache: bool,
    explain: Option<String>,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        sarif: false,
        root: None,
        config: None,
        baseline: None,
        write_baseline: None,
        audit: false,
        cache: None,
        no_cache: false,
        explain: None,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--sarif" => args.sarif = true,
            "--audit" => args.audit = true,
            "--no-cache" => args.no_cache = true,
            "--list-rules" => args.list_rules = true,
            "--root" => {
                args.root = Some(it.next().ok_or("--root requires a directory")?.into());
            }
            "--config" => {
                args.config = Some(it.next().ok_or("--config requires a file")?.into());
            }
            "--baseline" => {
                args.baseline = Some(it.next().ok_or("--baseline requires a file")?.into());
            }
            "--write-baseline" => {
                args.write_baseline =
                    Some(it.next().ok_or("--write-baseline requires a file")?.into());
            }
            "--cache" => {
                args.cache = Some(it.next().ok_or("--cache requires a file")?.into());
            }
            "--explain" => {
                args.explain = Some(it.next().ok_or("--explain requires a rule id")?);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.json && args.sarif {
        return Err("--json and --sarif are mutually exclusive".into());
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    if args.list_rules {
        for rule in RuleId::ALL {
            println!(
                "{} [{}] {}",
                rule.as_str(),
                rule.taxonomy().as_str(),
                rule.summary()
            );
        }
        return Ok(true);
    }
    if let Some(name) = &args.explain {
        let rule = RuleId::parse(name)
            .ok_or_else(|| format!("unknown rule `{name}` (expected DL001..DL009)"))?;
        print!("{}", explain::render(rule));
        return Ok(true);
    }
    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
            find_workspace_root(&cwd)
                .ok_or("no detlint.toml or workspace Cargo.toml found; use --root")?
        }
    };
    let config_path = args.config.unwrap_or_else(|| root.join("detlint.toml"));
    let mut config = Config::load(&config_path)?;
    config.audit = args.audit;

    let cache_path = if args.no_cache {
        None
    } else {
        Some(
            args.cache
                .unwrap_or_else(|| root.join("target/detlint-cache.json")),
        )
    };
    let (mut report_data, stats) = scan_workspace_cached(&root, &config, cache_path.as_deref())
        .map_err(|e| format!("scan failed: {e}"))?;
    if cache_path.is_some() {
        eprintln!(
            "detlint: cache: {} hit(s), {} miss(es) of {} file(s)",
            stats.hits,
            stats.misses,
            stats.total()
        );
    }

    if let Some(path) = &args.write_baseline {
        let base = Baseline::capture(&report_data, &root)
            .map_err(|e| format!("baseline capture failed: {e}"))?;
        base.save(path)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!(
            "detlint: wrote {} entry(ies) to {}",
            base.entries.len(),
            path.display()
        );
        return Ok(true);
    }
    if let Some(path) = &args.baseline {
        let base = Baseline::load(path)?;
        base.apply(&mut report_data, &root);
    }

    if args.sarif {
        let doc = serde_json::to_string_pretty(&sarif::sarif(&report_data))
            .map_err(|e| format!("SARIF encoding failed: {e}"))?;
        println!("{doc}");
    } else if args.json {
        let doc = serde_json::to_string_pretty(&report::json(&report_data))
            .map_err(|e| format!("JSON encoding failed: {e}"))?;
        println!("{doc}");
    } else {
        print!("{}", report::human(&report_data));
    }
    Ok(report_data.clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("detlint: error: {e}");
            ExitCode::from(2)
        }
    }
}
