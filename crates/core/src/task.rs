//! Benchmark task presets: model × dataset × training recipe.

use crate::settings::ExperimentSettings;
use detrand::Philox;
use nnet::optim::SgdConfig;
use nnet::schedule::LrSchedule;
use nnet::trainer::TrainConfig;
use nnet::{zoo, Network};
use nsdata::{CelebaSpec, GaussianSpec};
use serde::{Deserialize, Serialize};

/// Which trainable model a task uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ModelKind {
    /// The paper's 3-layer small CNN; `with_bn` selects the Fig. 2 arm.
    SmallCnn {
        /// Whether batch-norm follows each convolution.
        with_bn: bool,
    },
    /// Small CNN with a dropout layer (stochastic-layer noise source).
    SmallCnnDropout {
        /// Drop probability.
        rate: f32,
    },
    /// Scaled ResNet-18.
    MicroResNet18,
    /// Scaled ResNet-50.
    MicroResNet50,
    /// Scaled bottleneck-block ResNet.
    MicroResNetBottleneck,
    /// LeNet-5-style network (related-work comparisons).
    LeNet5,
    /// Trainable medium CNN with configurable filter size.
    MediumCnn {
        /// Square filter size (odd).
        k: usize,
    },
}

/// Which dataset a task trains on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DataSource {
    /// A Gaussian-cluster classification dataset.
    Gaussian(GaussianSpec),
    /// The CelebA attribute-prediction stand-in.
    Celeba(CelebaSpec),
}

impl DataSource {
    /// Image side length.
    pub fn input_hw(&self) -> usize {
        match self {
            DataSource::Gaussian(g) => g.hw,
            DataSource::Celeba(c) => c.hw,
        }
    }

    /// Image channels.
    pub fn channels(&self) -> usize {
        match self {
            DataSource::Gaussian(g) => g.channels,
            DataSource::Celeba(c) => c.channels,
        }
    }

    /// Output width of the classifier head (classes, or attribute count).
    pub fn output_dim(&self) -> usize {
        match self {
            DataSource::Gaussian(g) => g.classes,
            DataSource::Celeba(_) => 1,
        }
    }
}

/// A fully specified benchmark task.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Display name (paper nomenclature, e.g. `ResNet18 CIFAR-10`).
    pub name: String,
    /// The model.
    pub model: ModelKind,
    /// The dataset.
    pub data: DataSource,
    /// The training recipe.
    pub train: TrainConfig,
    /// Whether stochastic shift/flip augmentation is applied (the paper
    /// augments everything except CelebA).
    pub augment: bool,
}

impl TaskSpec {
    /// SmallCNN on the CIFAR-10 stand-in (paper Table 2, rows 1/4/7).
    pub fn small_cnn_cifar10() -> Self {
        Self {
            name: "SmallCNN CIFAR-10".into(),
            model: ModelKind::SmallCnn { with_bn: false },
            data: DataSource::Gaussian(GaussianSpec {
                class_sep: 0.34,
                train_per_class: 40,
                ..GaussianSpec::cifar10_sim()
            }),
            train: TrainConfig {
                epochs: 20,
                batch_size: 32,
                // Warmup keeps the BN-free small CNN from diverging on
                // unlucky initializations (its instability is the point of
                // the experiment, but collapsed replicas are not).
                schedule: LrSchedule::WarmupCosine {
                    base_lr: 0.03,
                    warmup_epochs: 3,
                    total_epochs: 20,
                },
                sgd: SgdConfig {
                    momentum: 0.9,
                    weight_decay: 1e-4,
                },
                shuffle: true,
                shuffle_seed_override: None,
                data_parallel_workers: 1,
                augment_seed_override: None,
                dropout_seed_override: None,
            },
            augment: true,
        }
    }

    /// SmallCNN with batch-norm (the Fig. 2 ablation arm).
    pub fn small_cnn_bn_cifar10() -> Self {
        let mut t = Self::small_cnn_cifar10();
        t.name = "SmallCNN+BN CIFAR-10".into();
        t.model = ModelKind::SmallCnn { with_bn: true };
        t
    }

    /// Micro-ResNet-18 on the CIFAR-10 stand-in (8×8 canvas).
    pub fn resnet18_cifar10() -> Self {
        let data = GaussianSpec {
            hw: 8,
            train_per_class: 48,
            class_sep: 0.85,
            ..GaussianSpec::cifar10_sim()
        };
        Self {
            name: "ResNet18 CIFAR-10".into(),
            model: ModelKind::MicroResNet18,
            data: DataSource::Gaussian(data),
            train: TrainConfig {
                epochs: 10,
                batch_size: 32,
                schedule: LrSchedule::StepDecay {
                    base_lr: 0.05,
                    factor: 0.1,
                    every: 8,
                },
                sgd: SgdConfig {
                    momentum: 0.9,
                    weight_decay: 1e-4,
                },
                shuffle: true,
                shuffle_seed_override: None,
                data_parallel_workers: 1,
                augment_seed_override: None,
                dropout_seed_override: None,
            },
            augment: true,
        }
    }

    /// Micro-ResNet-18 on the CIFAR-100 stand-in.
    pub fn resnet18_cifar100() -> Self {
        let data = GaussianSpec {
            hw: 8,
            train_per_class: 8,
            test_per_class: 8,
            class_sep: 1.2,
            super_sep: 0.5,
            ..GaussianSpec::cifar100_sim()
        };
        let mut t = Self::resnet18_cifar10();
        t.name = "ResNet18 CIFAR-100".into();
        t.data = DataSource::Gaussian(data);
        t.train.epochs = 8;
        t
    }

    /// Micro-ResNet-50 on the ImageNet stand-in (warmup + cosine recipe).
    pub fn resnet50_imagenet() -> Self {
        let data = GaussianSpec {
            hw: 8,
            train_per_class: 16,
            class_sep: 1.0,
            ..GaussianSpec::imagenet_sim()
        };
        Self {
            name: "ResNet50 ImageNet".into(),
            model: ModelKind::MicroResNet50,
            data: DataSource::Gaussian(data),
            train: TrainConfig {
                epochs: 8,
                batch_size: 32,
                schedule: LrSchedule::WarmupCosine {
                    base_lr: 0.08,
                    warmup_epochs: 1,
                    total_epochs: 8,
                },
                sgd: SgdConfig {
                    momentum: 0.9,
                    weight_decay: 1e-4,
                },
                shuffle: true,
                shuffle_seed_override: None,
                data_parallel_workers: 1,
                augment_seed_override: None,
                dropout_seed_override: None,
            },
            augment: true,
        }
    }

    /// ResNet-style attribute predictor on the CelebA stand-in (no
    /// augmentation, per the paper's Appendix B).
    pub fn celeba() -> Self {
        Self {
            name: "ResNet18 CelebA".into(),
            model: ModelKind::MicroResNet18,
            data: DataSource::Celeba(CelebaSpec::default()),
            train: TrainConfig {
                epochs: 6,
                batch_size: 32,
                schedule: LrSchedule::StepDecay {
                    base_lr: 0.05,
                    factor: 0.1,
                    every: 5,
                },
                sgd: SgdConfig {
                    momentum: 0.9,
                    weight_decay: 1e-4,
                },
                shuffle: true,
                shuffle_seed_override: None,
                data_parallel_workers: 1,
                augment_seed_override: None,
                dropout_seed_override: None,
            },
            augment: false,
        }
    }

    /// The three non-ImageNet tasks of Table 2 / Figures 1, 9, 10.
    pub fn table2_tasks() -> Vec<TaskSpec> {
        vec![
            Self::small_cnn_cifar10(),
            Self::resnet18_cifar10(),
            Self::resnet18_cifar100(),
        ]
    }

    /// Builds the task's model with the given algorithmic root.
    pub fn build_model(&self, root: &Philox) -> Network {
        let hw = self.data.input_hw();
        let c = self.data.channels();
        let out = self.data.output_dim();
        match self.model {
            ModelKind::SmallCnn { with_bn } => zoo::small_cnn(hw, c, out, with_bn, root),
            ModelKind::SmallCnnDropout { rate } => zoo::small_cnn_dropout(hw, c, out, rate, root),
            ModelKind::MicroResNet18 => zoo::micro_resnet18(hw, c, out, root),
            ModelKind::MicroResNet50 => zoo::micro_resnet50(hw, c, out, root),
            ModelKind::MicroResNetBottleneck => zoo::micro_resnet_bottleneck(hw, c, out, root),
            ModelKind::LeNet5 => zoo::lenet5(hw, c, out, root),
            ModelKind::MediumCnn { k } => zoo::medium_cnn_trainable(hw, c, out, k, root),
        }
    }

    /// The training config with the settings' epoch scaling applied.
    pub fn train_config(&self, settings: &ExperimentSettings) -> TrainConfig {
        let mut cfg = self.train;
        cfg.epochs = settings.scale_epochs(cfg.epochs);
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build_models() {
        let root = Philox::from_seed(1);
        for task in [
            TaskSpec::small_cnn_cifar10(),
            TaskSpec::small_cnn_bn_cifar10(),
            TaskSpec::resnet18_cifar10(),
            TaskSpec::resnet18_cifar100(),
            TaskSpec::resnet50_imagenet(),
            TaskSpec::celeba(),
        ] {
            let net = task.build_model(&root);
            assert!(net.param_count() > 0, "{}", task.name);
        }
    }

    #[test]
    fn celeba_head_is_single_output() {
        assert_eq!(TaskSpec::celeba().data.output_dim(), 1);
        assert_eq!(TaskSpec::resnet18_cifar100().data.output_dim(), 100);
    }

    #[test]
    fn epoch_scaling_applies() {
        let task = TaskSpec::small_cnn_cifar10();
        let settings = ExperimentSettings {
            epochs_scale: 0.5,
            ..ExperimentSettings::default()
        };
        assert_eq!(task.train_config(&settings).epochs, 10);
    }

    #[test]
    fn table2_tasks_have_paper_names() {
        let names: Vec<String> = TaskSpec::table2_tasks()
            .iter()
            .map(|t| t.name.clone())
            .collect();
        assert_eq!(
            names,
            vec![
                "SmallCNN CIFAR-10",
                "ResNet18 CIFAR-10",
                "ResNet18 CIFAR-100"
            ]
        );
    }
}
