#!/usr/bin/env bash
# The full local CI gate — the same steps .github/workflows/ci.yml runs.
# Run from anywhere inside the repository.
set -euo pipefail

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --workspace --release
run cargo test -q --workspace
run cargo clippy --workspace --all-targets -- -D warnings
run cargo fmt --check
run cargo run --release -p detlint

echo "All checks passed."
