//! Cross-crate property tests on the invariants the reproduction's claims
//! rest on.

// Exact float assertions are deliberate: bit-identical replay is what these tests check.
#![allow(clippy::float_cmp)]

use detrand::Philox;
use hwsim::{Device, ExecutionContext, ExecutionMode, OpClass};
use nstensor::{ReduceOrder, Reducer, Shape, Tensor, Workspace};
use proptest::prelude::*;

fn bounded_f32() -> impl Strategy<Value = f32> {
    (-1000i32..1000).prop_map(|v| v as f32 * 1e-3)
}

fn reduce_order() -> impl Strategy<Value = ReduceOrder> {
    (0usize..3).prop_map(|i| match i {
        0 => ReduceOrder::Sequential,
        1 => ReduceOrder::FixedTree,
        _ => ReduceOrder::Permuted,
    })
}

fn tensor_of(rows: usize, cols: usize, salt: u64) -> Tensor {
    let mut seed = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let data = (0..rows * cols)
        .map(|_| {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect();
    Tensor::from_vec(Shape::of(&[rows, cols]), data).unwrap()
}

fn assert_tensor_bits(a: &Tensor, b: &Tensor) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.shape(), b.shape());
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        prop_assert_eq!(x.to_bits(), y.to_bits());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Deterministic execution contexts are pure functions of the data:
    /// entropy never leaks into any op class.
    #[test]
    fn deterministic_context_entropy_invariant(
        xs in prop::collection::vec(bounded_f32(), 1..512),
        e1 in any::<u64>(),
        e2 in any::<u64>(),
    ) {
        let mut a = ExecutionContext::new(Device::p100(), ExecutionMode::Deterministic, e1);
        let mut b = ExecutionContext::new(Device::p100(), ExecutionMode::Deterministic, e2);
        for class in OpClass::ALL {
            prop_assert_eq!(
                a.reducer(class).sum(&xs).to_bits(),
                b.reducer(class).sum(&xs).to_bits()
            );
        }
    }

    /// The TPU is deterministic in *default* mode (its design, not a flag).
    #[test]
    fn tpu_default_mode_entropy_invariant(
        xs in prop::collection::vec(bounded_f32(), 1..512),
        e1 in any::<u64>(),
        e2 in any::<u64>(),
    ) {
        let mut a = ExecutionContext::new(Device::tpu_v2(), ExecutionMode::Default, e1);
        let mut b = ExecutionContext::new(Device::tpu_v2(), ExecutionMode::Default, e2);
        for class in OpClass::ALL {
            prop_assert_eq!(
                a.reducer(class).sum(&xs).to_bits(),
                b.reducer(class).sum(&xs).to_bits()
            );
        }
    }

    /// Nondeterministic execution stays within the f32 error envelope of
    /// the exact sum — noise is rounding-scale, never magnitude-scale.
    #[test]
    fn gpu_noise_is_rounding_scale(
        xs in prop::collection::vec(bounded_f32(), 1..512),
        entropy in any::<u64>(),
    ) {
        let exact: f64 = xs.iter().map(|&x| x as f64).sum();
        let abs: f64 = xs.iter().map(|&x| (x as f64).abs()).sum();
        let bound = (xs.len() as f64) * (f32::EPSILON as f64) * abs + 1e-9;
        let mut ctx = ExecutionContext::new(Device::v100(), ExecutionMode::Default, entropy);
        for _ in 0..8 {
            let s = ctx.reducer(OpClass::WeightGrad).sum(&xs) as f64;
            prop_assert!((s - exact).abs() <= bound, "err {}", (s - exact).abs());
        }
    }

    /// Model construction is a pure function of the algorithmic seed.
    #[test]
    fn model_weights_pure_in_seed(seed in any::<u64>()) {
        let a = nnet::zoo::small_cnn(8, 3, 4, true, &Philox::from_seed(seed));
        let b = nnet::zoo::small_cnn(8, 3, 4, true, &Philox::from_seed(seed));
        let mut a = a;
        let mut b = b;
        prop_assert_eq!(a.flat_weights(), b.flat_weights());
    }

    /// Churn is a metric: symmetric, bounded, zero on the diagonal.
    #[test]
    fn churn_metric_properties(
        a in prop::collection::vec(0u32..5, 1..128),
        seed in any::<u64>(),
    ) {
        let mut rng = Philox::from_seed(seed).rng_at(0);
        let b: Vec<u32> = a.iter().map(|&v| if rng.next_f32() < 0.3 { (v + 1) % 5 } else { v }).collect();
        let ab = nsmetrics::churn(&a, &b);
        prop_assert_eq!(ab, nsmetrics::churn(&b, &a));
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert_eq!(nsmetrics::churn(&a, &a), 0.0);
    }

    /// Normalized L2 is scale-invariant and bounded by 2.
    #[test]
    fn l2_metric_properties(
        w in prop::collection::vec(bounded_f32(), 2..128),
        scale in 1u32..1000,
    ) {
        prop_assume!(w.iter().any(|&x| x != 0.0));
        let scaled: Vec<f32> = w.iter().map(|&x| x * scale as f32).collect();
        prop_assert!(nsmetrics::l2_normalized(&w, &scaled) < 1e-5);
        let neg: Vec<f32> = w.iter().map(|&x| -x).collect();
        let d = nsmetrics::l2_normalized(&w, &neg);
        prop_assert!((d - 2.0).abs() < 1e-5);
    }

    /// The blocked GEMM engine is bit-identical to the per-element
    /// reference path for every accumulation order, lane count,
    /// amplification tier and thread count — and leaves the reducer in
    /// the same state (RNG position + invocation count), so subsequent
    /// ops stay in sync too.
    #[test]
    fn blocked_gemm_bit_identical_to_reference(
        m in 1usize..24,
        k in 0usize..80,
        n in 1usize..24,
        order in reduce_order(),
        lanes in 1usize..nstensor::MAX_LANES + 1,
        amp in (0usize..2).prop_map(|i| if i == 0 { 0.0f32 } else { 1e4 }),
        threads in 1usize..5,
        salt in any::<u64>(),
    ) {
        let a = tensor_of(m, k, salt);
        let b = tensor_of(k, n, salt.wrapping_add(1));
        let base = Reducer::new(order, lanes, salt ^ 0xda7a).with_amplification(amp);
        let mut fast_red = base.clone();
        let mut ref_red = base.clone();
        let mut ws = Workspace::new();
        let fast = nstensor::matmul_ws(&a, &b, &mut fast_red, threads, &mut ws).unwrap();
        let reference = nstensor::matmul_reference(&a, &b, &mut ref_red).unwrap();
        assert_tensor_bits(&fast, &reference)?;
        prop_assert_eq!(fast_red.invocations(), ref_red.invocations());
        // Probe: the *next* reduction must agree bitwise, proving the
        // scheduler RNG advanced identically on both paths.
        let probe = tensor_of(1, k.max(1), salt.wrapping_add(2));
        prop_assert_eq!(
            fast_red.dot(probe.as_slice(), probe.as_slice()).to_bits(),
            ref_red.dot(probe.as_slice(), probe.as_slice()).to_bits()
        );
    }

    /// Same bit-identity contract for the transposed entry points.
    #[test]
    fn blocked_gemm_transposed_forms_bit_identical(
        m in 1usize..16,
        k in 1usize..48,
        n in 1usize..16,
        order in reduce_order(),
        threads in 1usize..4,
        salt in any::<u64>(),
    ) {
        let base = Reducer::new(order, 40, salt ^ 0x5eed).with_amplification(2e3);
        let mut ws = Workspace::new();
        let a = tensor_of(k, m, salt);
        let b = tensor_of(k, n, salt.wrapping_add(3));
        let fast = nstensor::matmul_at_b_ws(&a, &b, &mut base.clone(), threads, &mut ws).unwrap();
        let reference = nstensor::matmul_at_b_reference(&a, &b, &mut base.clone()).unwrap();
        assert_tensor_bits(&fast, &reference)?;
        let a = tensor_of(m, k, salt.wrapping_add(4));
        let b = tensor_of(n, k, salt.wrapping_add(5));
        let fast = nstensor::matmul_a_bt_ws(&a, &b, &mut base.clone(), threads, &mut ws).unwrap();
        let reference = nstensor::matmul_a_bt_reference(&a, &b, &mut base.clone()).unwrap();
        assert_tensor_bits(&fast, &reference)?;
    }

    /// Conv forward + backward on the engine are bit-invariant in thread
    /// count and workspace reuse for every order.
    #[test]
    fn conv_engine_bit_invariant_in_threads(
        order in reduce_order(),
        threads in 2usize..5,
        salt in any::<u64>(),
    ) {
        let g = nstensor::ConvGeometry::new(2, 5, 3, 1, 1, 6, 6);
        let x = tensor_of(3, 2 * 6 * 6, salt).reshape(Shape::of(&[3, 2, 6, 6])).unwrap();
        let w = tensor_of(5, g.patch_len(), salt.wrapping_add(6));
        let bias = tensor_of(1, 5, salt.wrapping_add(7)).reshape(Shape::of(&[5])).unwrap();
        let base = Reducer::new(order, 40, salt ^ 0xc0de).with_amplification(1e3);
        let mut ws = Workspace::new();
        let y1 = nstensor::conv2d_forward(&x, &w, &bias, &g, &mut base.clone()).unwrap();
        let yt = nstensor::conv2d_forward_ws(&x, &w, &bias, &g, &mut base.clone(), threads, &mut ws).unwrap();
        assert_tensor_bits(&y1, &yt)?;
        let mut dy = y1.clone();
        dy.scale(0.25);
        let g1 = nstensor::conv2d_backward(&x, &w, &dy, &g, &mut base.clone()).unwrap();
        let gt = nstensor::conv2d_backward_ws(&x, &w, &dy, &g, &mut base.clone(), threads, &mut ws).unwrap();
        assert_tensor_bits(&g1.dx, &gt.dx)?;
        assert_tensor_bits(&g1.dw, &gt.dw)?;
        assert_tensor_bits(&g1.db, &gt.db)?;
    }

    /// Dataset generation is pure in the spec.
    #[test]
    fn dataset_pure_in_seed(seed in any::<u64>()) {
        let spec = nsdata::GaussianSpec {
            classes: 3,
            train_per_class: 4,
            test_per_class: 2,
            hw: 6,
            seed,
            ..nsdata::GaussianSpec::cifar10_sim()
        };
        let a = spec.generate();
        let b = spec.generate();
        prop_assert_eq!(a.train.x.as_slice(), b.train.x.as_slice());
        prop_assert_eq!(a.test.x.as_slice(), b.test.x.as_slice());
    }
}
