//! NoiseScope: the experimental framework of *"Randomness in Neural Network
//! Training: Characterizing the Impact of Tooling"* (Zhuang, Zhang, Song,
//! Hooker — MLSys 2022), reproduced end-to-end on a simulated accelerator
//! substrate.
//!
//! The framework isolates two families of training-time noise:
//!
//! - **Algorithmic noise (ALGO)** — random initialization, data shuffling,
//!   stochastic augmentation, stochastic layers. Controlled by fixing the
//!   run's algorithmic seed ([`detrand`]).
//! - **Implementation noise (IMPL)** — floating-point accumulation-order
//!   nondeterminism introduced by parallel hardware and nondeterministic
//!   vendor kernels. Controlled by deterministic execution
//!   ([`hwsim::ExecutionMode::Deterministic`]), at a cost this framework
//!   also measures.
//!
//! The crate's public surface is organized as:
//!
//! - [`variant::NoiseVariant`] — the paper's four experimental arms
//!   (`ALGO+IMPL`, `ALGO`, `IMPL`, `Control`);
//! - [`task::TaskSpec`] — model × dataset × training-recipe presets
//!   mirroring the paper's benchmarks;
//! - [`runner`] — trains replica fleets and collects weights/predictions;
//! - [`report`] — stability reports (accuracy stddev, churn, normalized
//!   L2) and text-table rendering;
//! - [`experiments`] — one entry point per table/figure of the paper
//!   (Table 2, Table 3/5, Figures 1-10), each returning a serializable
//!   result structure.
//!
//! # Example
//!
//! ```no_run
//! use noisescope::prelude::*;
//!
//! // Measure IMPL-only noise of the small CNN on a simulated V100.
//! let settings = ExperimentSettings { replicas: 3, ..ExperimentSettings::default() };
//! let task = TaskSpec::small_cnn_cifar10();
//! let prepared = PreparedTask::prepare(&task);
//! let runs = run_variant(&prepared, &Device::v100(), NoiseVariant::Impl, &settings);
//! let report = stability_report(&prepared, &Device::v100(), NoiseVariant::Impl, &runs);
//! println!("{}", report.summary_line());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod fleet;
pub mod paper;
pub mod report;
pub mod resume;
pub mod runner;
pub mod settings;
pub mod task;
pub mod variant;

/// Convenience re-exports for experiment drivers.
pub mod prelude {
    pub use crate::fleet::{run_variant_fleet, worker_main, FleetOptions};
    pub use crate::report::{render_table, save_json, stability_report, StabilityReport};
    pub use crate::resume::{run_variant_resumable, CheckpointStore};
    pub use crate::runner::{
        run_replica, run_replica_with, run_variant, Preds, PredsKindError, PreparedData,
        PreparedTask, ReplicaOptions, ReplicaResult, ReplicaStatus, VariantRuns,
    };
    pub use crate::settings::ExperimentSettings;
    pub use crate::settings::SettingsError;
    pub use crate::task::{DataSource, ModelKind, TaskSpec};
    pub use crate::variant::NoiseVariant;
    pub use hwsim::{Device, ExecutionContext, ExecutionMode, OpClass};
}
