//! Shared fixtures for the NoiseScope integration tests.
//!
//! Everything here is sized for test speed: tiny datasets, one or two
//! epochs. The full-scale experiments live in the `repro` binary of
//! `ns-bench`.

use noisescope::prelude::*;
use nsdata::GaussianSpec;

/// A task small enough that a replica trains in well under a second.
pub fn tiny_task() -> TaskSpec {
    let mut t = TaskSpec::small_cnn_cifar10();
    t.data = DataSource::Gaussian(GaussianSpec {
        classes: 4,
        train_per_class: 16,
        test_per_class: 10,
        hw: 8,
        ..GaussianSpec::cifar10_sim()
    });
    t.train.epochs = 3;
    t.augment = false;
    t
}

/// A tiny residual-network task (exercises BN + residual paths).
pub fn tiny_resnet_task() -> TaskSpec {
    let mut t = TaskSpec::resnet18_cifar10();
    t.data = DataSource::Gaussian(GaussianSpec {
        classes: 4,
        train_per_class: 12,
        test_per_class: 8,
        hw: 8,
        ..GaussianSpec::cifar10_sim()
    });
    t.train.epochs = 2;
    t.augment = false;
    t
}

/// Two-replica settings for fast pairwise comparisons.
pub fn tiny_settings() -> ExperimentSettings {
    ExperimentSettings {
        replicas: 2,
        ..ExperimentSettings::default()
    }
}
