//! Fault-tolerance guarantees, end to end: interrupt/resume is bitwise
//! lossless, chaos-injected fleets recover to bit-identical results, and
//! exhausted retry budgets degrade into flagged reports instead of
//! panics.

// Exact float assertions are deliberate: bit-identical replay is what these tests check.
#![allow(clippy::float_cmp)]

use detrand::{Philox, StreamId};
use hwsim::ChaosConfig;
use nnet::checkpoint::Checkpoint;
use noisescope::prelude::*;
use ns_integration::{tiny_settings, tiny_task};
use proptest::prelude::*;

/// The golden interrupt/resume property on a deterministic device and a
/// noisy GPU: training interrupted at an epoch boundary and resumed from
/// the persisted checkpoint must reproduce the uninterrupted run
/// bit-for-bit — weights, predictions and accuracy.
#[test]
fn golden_interrupt_resume_is_bitwise_identical_on_cpu_and_gpu() {
    let mut task = tiny_task();
    task.train.epochs = 4;
    let prepared = PreparedTask::prepare(&task);
    let settings = tiny_settings();
    for device in [Device::cpu(), Device::v100()] {
        let reference = run_replica(&prepared, &device, NoiseVariant::Impl, &settings, 0)
            .expect("uninterrupted replica trains");

        // "Interrupt" at epoch 2: capture the epoch-boundary checkpoint a
        // durable sink would have persisted before the process died.
        let mut at_k: Option<Checkpoint> = None;
        let mut sink = |c: &Checkpoint| {
            if c.epochs_done == 2 {
                at_k = Some(c.clone());
            }
        };
        run_replica_with(
            &prepared,
            &device,
            NoiseVariant::Impl,
            &settings,
            0,
            ReplicaOptions {
                checkpoint_every_epochs: 1,
                sink: Some(&mut sink),
                ..ReplicaOptions::default()
            },
        )
        .expect("checkpointing replica trains");
        let ck = at_k.expect("epoch-2 checkpoint was emitted");
        assert_eq!(ck.epochs_done, 2);

        let resumed = run_replica_with(
            &prepared,
            &device,
            NoiseVariant::Impl,
            &settings,
            0,
            ReplicaOptions {
                resume: Some(&ck),
                ..ReplicaOptions::default()
            },
        )
        .expect("resumed replica trains");

        let bits = |ws: &[f32]| ws.iter().map(|w| w.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&reference.weights),
            bits(&resumed.weights),
            "resume-at-epoch-2 weights diverged on {}",
            device.name()
        );
        assert_eq!(reference.preds, resumed.preds, "on {}", device.name());
        assert_eq!(
            reference.accuracy.to_bits(),
            resumed.accuracy.to_bits(),
            "on {}",
            device.name()
        );
    }
}

/// Chaos-injected transient faults (launch failures, kernel panics, NaN
/// poison) are recovered by the supervisor into a fleet bit-identical to a
/// fault-free one, with the retries visible in the statuses.
#[test]
fn chaos_fleet_recovers_bit_identically_with_retried_statuses() {
    let prepared = PreparedTask::prepare(&tiny_task());
    let clean = tiny_settings();
    let chaotic = ExperimentSettings {
        chaos: Some(ChaosConfig::standard(41)),
        ..clean
    };
    let baseline = run_variant(&prepared, &Device::v100(), NoiseVariant::AlgoImpl, &clean);
    let faulted = run_variant(&prepared, &Device::v100(), NoiseVariant::AlgoImpl, &chaotic);
    assert!(faulted.is_complete(), "statuses: {:?}", faulted.statuses);
    assert!(
        faulted.retried_replicas() > 0,
        "chaos must fault at least one replica: {:?}",
        faulted.statuses
    );
    assert_eq!(baseline.results.len(), faulted.results.len());
    for (a, b) in baseline.results.iter().zip(&faulted.results) {
        assert_eq!(a.weights, b.weights, "replica {}", a.replica);
        assert_eq!(a.preds, b.preds, "replica {}", a.replica);
    }
}

/// Persistent faults that outlive the retry budget cost the fleet those
/// replicas — and nothing else: no panic, a degraded `VariantRuns`, and a
/// stability report that flags itself as incomplete.
#[test]
fn exhausted_budget_degrades_into_flagged_report() {
    let prepared = PreparedTask::prepare(&tiny_task());
    let settings = ExperimentSettings {
        retry_budget: 1,
        chaos: Some(ChaosConfig {
            persistent: true,
            ..ChaosConfig::standard(7)
        }),
        ..tiny_settings()
    };
    let runs = run_variant(&prepared, &Device::v100(), NoiseVariant::Impl, &settings);
    assert!(!runs.is_complete());
    assert!(runs.results.is_empty());
    let report = stability_report(&prepared, &Device::v100(), NoiseVariant::Impl, &runs);
    assert!(!report.is_complete());
    assert_eq!(report.failed_replicas, vec![0, 1]);
    assert!(
        report.summary_line().contains("INCOMPLETE: 2 of 2"),
        "{}",
        report.summary_line()
    );
}

proptest! {
    /// The checkpoint codec is byte-exact over arbitrary training state:
    /// decode(encode(ck)) == ck, including non-trivial RNG stream and
    /// scheduler positions.
    #[test]
    fn checkpoint_codec_round_trips(
        seed in any::<u64>(),
        draws in 0usize..40,
        epochs_done in 0u32..100,
        steps in any::<u64>(),
        // Floats travel the codec as raw bits, so arbitrary bit patterns
        // (subnormals, infinities, NaN payloads) are the honest domain.
        loss_bits in proptest::collection::vec(any::<u32>(), 0..8),
        weight_bits in proptest::collection::vec(any::<u32>(), 0..64),
        velocity_bits in proptest::collection::vec(
            proptest::collection::vec(any::<u32>(), 0..16), 0..4),
        order in proptest::collection::vec(any::<u32>(), 0..64),
    ) {
        let floats = |bits: Vec<u32>| bits.into_iter().map(f32::from_bits).collect::<Vec<_>>();
        let epoch_losses = floats(loss_bits);
        let weights = floats(weight_bits);
        let velocity: Vec<Vec<f32>> = velocity_bits.into_iter().map(floats).collect();
        let root = Philox::from_seed(seed);
        let mut shuffle = root.stream(StreamId::SHUFFLE);
        let mut augment = root.stream(StreamId::AUGMENT);
        for _ in 0..draws {
            let _ = shuffle.next_u64();
            let _ = augment.next_f32();
        }
        let mut exec = ExecutionContext::builder(Device::v100())
            .entropy(seed ^ 0xABCD)
            .build();
        // Advance scheduler state so the snapshot is not the trivial one.
        for _ in 0..(draws % 7) {
            let _ = exec.reducer(OpClass::WeightGrad).sum(&[1.0, 2.0, 3.0]);
        }
        let ck = Checkpoint {
            epochs_done,
            steps,
            epoch_losses,
            weights,
            velocity,
            shuffle_rng: shuffle.snapshot(),
            augment_rng: augment.snapshot(),
            exec: exec.snapshot(),
            order,
        };
        let bytes = ck.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).expect("decode");
        // PartialEq would treat NaN losses as unequal; compare the exact
        // byte encodings instead (byte-exactness is the property anyway).
        prop_assert_eq!(bytes, back.to_bytes());
    }
}
