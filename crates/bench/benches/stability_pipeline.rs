//! End-to-end stability pipeline at microbenchmark scale: a replica train
//! plus fleet metrics (the computation behind Table 2 and Figures 1-5).

use criterion::{criterion_group, criterion_main, Criterion};
use noisescope::prelude::*;
use ns_bench::{micro_settings, micro_task};
use nsmetrics::{pairwise_mean_churn, pairwise_mean_l2};

fn bench_stability(c: &mut Criterion) {
    let prepared = PreparedTask::prepare(&micro_task());
    let settings = micro_settings();
    let mut group = c.benchmark_group("stability_pipeline");
    group.sample_size(10);
    group.bench_function("replica_train_micro", |b| {
        let mut replica = 0u32;
        b.iter(|| {
            replica = replica.wrapping_add(1);
            std::hint::black_box(run_replica(
                &prepared,
                &Device::v100(),
                NoiseVariant::AlgoImpl,
                &settings,
                replica,
            ))
        });
    });

    // Fleet metric computation on synthetic predictions.
    let preds: Vec<Vec<u32>> = (0..10)
        .map(|r| (0..2000).map(|i| ((i * 7 + r * 13) % 10) as u32).collect())
        .collect();
    let weights: Vec<Vec<f32>> = (0..10)
        .map(|r| (0..20_000).map(|i| ((i + r) as f32).sin()).collect())
        .collect();
    group.bench_function("pairwise_churn_10x2000", |b| {
        b.iter(|| std::hint::black_box(pairwise_mean_churn(&preds)));
    });
    group.bench_function("pairwise_l2_10x20000", |b| {
        b.iter(|| std::hint::black_box(pairwise_mean_l2(&weights)));
    });
    group.finish();
}

criterion_group!(benches, bench_stability);
criterion_main!(benches);
