//! DL007 fixture: a sequential RNG draw crossing a thread or process
//! boundary. The draw's value depends on the RNG cursor at call time, so
//! capturing it into a spawned closure or an IPC frame bakes scheduling
//! history into the computation. The sanctioned pattern re-derives
//! randomness from a replica index on the far side of the boundary.

// <explain:DL007:bad>
pub fn captured_draw(rng: &mut StreamRng, scope: &Scope<'_>) {
    let jitter = rng.next_f64();
    scope.spawn(move || simulate(jitter)); // fires: cursor-dependent draw crosses the spawn
}
// </explain:DL007:bad>

pub fn encoded_draw(rng: &mut StreamRng) -> Vec<u8> {
    let tag = rng.next_u32();
    encode_frame(Tag::Result, tag) // fires: draw baked into an IPC frame
}

pub fn sampled_then_spawned(dist: &Normal, rng: &mut StreamRng, scope: &Scope<'_>) {
    let noise = dist.sample(rng);
    scope.spawn(move || perturb(noise)); // fires: sampled value crosses the spawn
}

// --- negative: index-derived entropy is position-independent ----------

// <explain:DL007:good>
pub fn derived_per_replica(settings: &Settings, scope: &Scope<'_>, idx: u64) {
    let entropy = settings.entropy_for(idx);
    scope.spawn(move || simulate(entropy));
}
// </explain:DL007:good>

// --- negative: pre-planned draws in reference order -------------------

pub fn planned_draws(red: &mut Reducer, scope: &Scope<'_>) {
    let plan = red.plan_dots(64, 8);
    scope.spawn(move || run_band(plan));
}

// --- negative: draw consumed locally, nothing crosses -----------------

pub fn local_draw(rng: &mut StreamRng) -> f64 {
    let x = rng.next_f64();
    x * 2.0
}

// --- negative: snapshot codecs encode cursors deliberately ------------

pub fn checkpointed(rng: &StreamRng, out: &mut Vec<u8>) {
    let snap = rng.snapshot();
    out.extend(encode_payload(&snap));
}
