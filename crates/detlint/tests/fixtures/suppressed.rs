//! Suppression fixture: the same hazards as the rule fixtures, each
//! silenced by a well-formed `detlint::allow`. Must scan clean with one
//! suppressed finding per suppressible rule and no unused-allow warnings.

use std::collections::HashMap;
use std::time::Instant;

pub fn debug_dump(agg: &HashMap<String, f64>) -> Vec<f64> {
    // detlint::allow(DL001, reason = "debug helper; output order is irrelevant")
    agg.values().copied().collect()
}

pub fn jitter() -> u64 {
    rand::random() // detlint::allow(DL002, reason = "backoff jitter, not experiment randomness")
}

// <explain:DL003:good>
pub fn diagnostics() -> f64 {
    let t0 = Instant::now(); // detlint::allow(DL003, reason = "log line only, never serialized into results")
    t0.elapsed().as_secs_f64()
}
// </explain:DL003:good>

pub fn tiny_total(xs: [f32; 4]) -> f32 {
    xs.iter().sum() // detlint::allow(DL004, reason = "fixed 4-element array, order is static")
}

pub fn bounded_parallel(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x.round()).sum() // detlint::allow(DL005, reason = "integral values; addition is exact")
}

pub fn parallel_then_accumulated(xs: &[f64]) -> f64 {
    let parts: Vec<f64> = xs.par_iter().map(|x| x * 2.0).collect();
    let mut total = 0.0;
    for p in &parts {
        // detlint::allow(DL006, reason = "two shards at most; order fixed by construction")
        total += p;
    }
    total
}

pub fn jittered_worker(rng: &mut StreamRng, scope: &Scope<'_>) {
    let backoff = rng.next_u64();
    // detlint::allow(DL007, reason = "backoff jitter shapes timing only, never results")
    scope.spawn(move || wait_and_go(backoff));
}

pub fn debug_verbosity() -> u32 {
    let raw = std::env::var("NS_DEBUG_VERBOSITY").unwrap_or_default();
    // detlint::allow(DL008, reason = "debug log verbosity; never touches results")
    raw.parse::<u32>().unwrap_or(0)
}
