//! Offline stand-in for the `serde` crate (see `third_party/README.md`).
//!
//! Uses a simplified data model: serializing produces an owned
//! [`Value`] tree, deserializing consumes a `&Value`. The derive macros in
//! `serde_derive` generate impls of these traits with serde's *default
//! encodings* (structs → objects; unit variants → strings; newtype/tuple/
//! struct variants → single-key objects), so JSON written by this stand-in
//! is interchangeable with real serde_json output for the shapes this
//! workspace uses.
//!
//! Object keys live in a `BTreeMap`: every serialization of the same data
//! is byte-identical, which this repository treats as a feature (results
//! files must be stable across runs — see `detlint` rule DL001).

mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Number, Value};

use std::collections::{BTreeMap, HashMap};

/// Error produced when a [`Value`] cannot be interpreted as the requested
/// type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with a free-form message.
    pub fn msg(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// Creates a "expected X while deserializing Y" error.
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError {
            msg: format!("expected {what} while deserializing {ty}"),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a JSON value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::UInt(*self as u128))
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if v >= 0 {
                    Value::Num(Number::UInt(v as u128))
                } else {
                    Value::Num(Number::Int(v))
                }
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, i128, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(Number::Float(*self as f64))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(Number::Float(*self))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Collecting into the BTreeMap-backed object sorts keys, so the
        // serialized form is independent of hash iteration order.
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", "bool"))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        // Real serde borrows `&'de str` from the input document; this
        // stand-in's data model is owned, so strings deserialized into
        // `&'static str` fields (e.g. device-name tables) are interned in a
        // process-wide dedup table instead. Bounded by the set of distinct
        // strings ever deserialized this way — a handful of device names.
        use std::collections::BTreeSet;
        use std::sync::{Mutex, OnceLock};
        static INTERNED: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
        let s = v
            .as_str()
            .ok_or_else(|| DeError::expected("string", "&'static str"))?;
        let mut table = INTERNED
            .get_or_init(|| Mutex::new(BTreeSet::new()))
            .lock()
            .expect("intern table poisoned");
        if let Some(found) = table.get(s) {
            return Ok(found);
        }
        let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
        table.insert(leaked);
        Ok(leaked)
    }
}

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_number()
                    .ok_or_else(|| DeError::expected("number", stringify!($t)))?;
                n.as_u128()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| DeError::expected("unsigned integer in range", stringify!($t)))
            }
        }
    )*};
}
impl_de_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_number()
                    .ok_or_else(|| DeError::expected("number", stringify!($t)))?;
                n.as_i128()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| DeError::expected("integer in range", stringify!($t)))
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, i128, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", "f64"))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError::expected("array", "Vec"))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| DeError::expected("array of exact length", "[T; N]"))
    }
}

macro_rules! impl_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v
                    .as_array()
                    .ok_or_else(|| DeError::expected("array", "tuple"))?;
                const LEN: usize = 0 $(+ { let _ = stringify!($t); 1 })+;
                if arr.len() != LEN {
                    return Err(DeError::expected("array of tuple arity", "tuple"));
                }
                Ok(($($t::from_value(&arr[$n])?,)+))
            }
        }
    )*};
}
impl_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", "BTreeMap"))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", "HashMap"))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
// Tests assert exact float values: bit-identical replay is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2].to_value()).unwrap(),
            vec![1, 2]
        );
        let arr: [u16; 3] = Deserialize::from_value(&[1u16, 2, 3].to_value()).unwrap();
        assert_eq!(arr, [1, 2, 3]);
    }

    #[test]
    fn u128_counter_round_trips() {
        let big: u128 = u128::MAX - 5;
        assert_eq!(u128::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn hashmap_serializes_sorted() {
        let mut m = HashMap::new();
        m.insert("zeta".to_string(), 1u32);
        m.insert("alpha".to_string(), 2u32);
        let v = m.to_value();
        let obj = v.as_object().unwrap();
        let keys: Vec<&String> = obj.keys().collect();
        assert_eq!(keys, ["alpha", "zeta"]);
    }

    #[test]
    fn option_maps_null() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&5u32.to_value()).unwrap(),
            Some(5)
        );
    }
}
