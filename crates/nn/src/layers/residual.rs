//! Residual (ResNet basic) blocks.

use super::{BatchNorm2d, Conv2d, Layer, Relu};
use detrand::{Philox, StreamRng};
use hwsim::ExecutionContext;
use nstensor::{ConvGeometry, Tensor};

/// A ResNet basic block: `relu(bn2(conv2(relu(bn1(conv1(x))))) + shortcut(x))`,
/// with a projection (1×1 strided conv + BN) shortcut when the shape changes.
#[derive(Debug)]
pub struct ResidualBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    projection: Option<(Conv2d, BatchNorm2d)>,
    out_mask: Vec<f32>,
    cached_x: Option<Tensor>,
}

impl ResidualBlock {
    /// Creates a block mapping `in_c` channels at `in_h × in_w` to `out_c`
    /// channels, downsampling by `stride`.
    pub fn new(
        in_c: usize,
        out_c: usize,
        stride: usize,
        in_h: usize,
        in_w: usize,
        rng: &mut StreamRng,
    ) -> Self {
        let g1 = ConvGeometry::new(in_c, out_c, 3, stride, 1, in_h, in_w);
        let (mid_h, mid_w) = (g1.out_h(), g1.out_w());
        let g2 = ConvGeometry::new(out_c, out_c, 3, 1, 1, mid_h, mid_w);
        let projection = if stride != 1 || in_c != out_c {
            let gp = ConvGeometry::new(in_c, out_c, 1, stride, 0, in_h, in_w);
            Some((Conv2d::new(gp, rng), BatchNorm2d::new(out_c, rng)))
        } else {
            None
        };
        Self {
            conv1: Conv2d::new(g1, rng),
            bn1: BatchNorm2d::new(out_c, rng),
            relu1: Relu::new(),
            conv2: Conv2d::new(g2, rng),
            bn2: BatchNorm2d::new(out_c, rng),
            projection,
            out_mask: Vec::new(),
            cached_x: None,
        }
    }

    /// Output spatial height.
    pub fn out_h(&self) -> usize {
        self.conv2.geometry().out_h()
    }

    /// Output spatial width.
    pub fn out_w(&self) -> usize {
        self.conv2.geometry().out_w()
    }

    /// Output channels.
    pub fn out_c(&self) -> usize {
        self.conv2.geometry().out_c
    }
}

impl Layer for ResidualBlock {
    fn forward(
        &mut self,
        x: Tensor,
        exec: &mut ExecutionContext,
        algo: &Philox,
        step: u64,
        training: bool,
    ) -> Tensor {
        let main = self.conv1.forward(x.clone(), exec, algo, step, training);
        let main = self.bn1.forward(main, exec, algo, step, training);
        let main = self.relu1.forward(main, exec, algo, step, training);
        let main = self.conv2.forward(main, exec, algo, step, training);
        let mut main = self.bn2.forward(main, exec, algo, step, training);

        let shortcut = match &mut self.projection {
            Some((conv, bn)) => {
                let s = conv.forward(x.clone(), exec, algo, step, training);
                bn.forward(s, exec, algo, step, training)
            }
            None => x.clone(),
        };
        main.add_assign(&shortcut).expect("residual shape");

        // Final ReLU (mask cached for backward).
        let mut mask = vec![0f32; main.len()];
        for (v, m) in main.as_mut_slice().iter_mut().zip(&mut mask) {
            if *v > 0.0 {
                *m = 1.0;
            } else {
                *v = 0.0;
            }
        }
        if training {
            self.out_mask = mask;
            self.cached_x = Some(x);
        }
        main
    }

    fn backward(&mut self, mut dy: Tensor, exec: &mut ExecutionContext) -> Tensor {
        assert!(!self.out_mask.is_empty(), "backward before forward");
        let _ = self.cached_x.take();
        for (g, m) in dy.as_mut_slice().iter_mut().zip(&self.out_mask) {
            *g *= m;
        }
        // Main branch.
        let d = self.bn2.backward(dy.clone(), exec);
        let d = self.conv2.backward(d, exec);
        let d = self.relu1.backward(d, exec);
        let d = self.bn1.backward(d, exec);
        let mut dx = self.conv1.backward(d, exec);
        // Shortcut branch.
        let ds = match &mut self.projection {
            Some((conv, bn)) => {
                let d = bn.backward(dy, exec);
                conv.backward(d, exec)
            }
            None => dy,
        };
        dx.add_assign(&ds).expect("residual grad shape");
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        self.conv1.visit_params(f);
        self.bn1.visit_params(f);
        self.conv2.visit_params(f);
        self.bn2.visit_params(f);
        if let Some((conv, bn)) = &mut self.projection {
            conv.visit_params(f);
            bn.visit_params(f);
        }
    }

    fn param_count(&self) -> usize {
        let mut n = self.conv1.param_count()
            + self.bn1.param_count()
            + self.conv2.param_count()
            + self.bn2.param_count();
        if let Some((conv, bn)) = &self.projection {
            n += conv.param_count() + bn.param_count();
        }
        n
    }

    fn kind(&self) -> &'static str {
        "residual_block"
    }
}

/// A ResNet bottleneck block:
/// `relu(bn3(conv1x1_expand(relu(bn2(conv3x3(relu(bn1(conv1x1_reduce(x)))))))) + shortcut(x))`.
///
/// `mid` channels in the 3×3 stage, `4·mid`-style expansion controlled by
/// `out_c`. The projection shortcut kicks in whenever shape changes.
#[derive(Debug)]
pub struct BottleneckBlock {
    reduce: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    mid: Conv2d,
    bn2: BatchNorm2d,
    relu2: Relu,
    expand: Conv2d,
    bn3: BatchNorm2d,
    projection: Option<(Conv2d, BatchNorm2d)>,
    out_mask: Vec<f32>,
}

impl BottleneckBlock {
    /// Creates a bottleneck block `in_c → mid → out_c` with the 3×3 stage
    /// strided by `stride`.
    pub fn new(
        in_c: usize,
        mid_c: usize,
        out_c: usize,
        stride: usize,
        in_h: usize,
        in_w: usize,
        rng: &mut StreamRng,
    ) -> Self {
        let g1 = ConvGeometry::new(in_c, mid_c, 1, 1, 0, in_h, in_w);
        let g2 = ConvGeometry::new(mid_c, mid_c, 3, stride, 1, in_h, in_w);
        let (oh, ow) = (g2.out_h(), g2.out_w());
        let g3 = ConvGeometry::new(mid_c, out_c, 1, 1, 0, oh, ow);
        let projection = if stride != 1 || in_c != out_c {
            let gp = ConvGeometry::new(in_c, out_c, 1, stride, 0, in_h, in_w);
            Some((Conv2d::new(gp, rng), BatchNorm2d::new(out_c, rng)))
        } else {
            None
        };
        Self {
            reduce: Conv2d::new(g1, rng),
            bn1: BatchNorm2d::new(mid_c, rng),
            relu1: Relu::new(),
            mid: Conv2d::new(g2, rng),
            bn2: BatchNorm2d::new(mid_c, rng),
            relu2: Relu::new(),
            expand: Conv2d::new(g3, rng),
            bn3: BatchNorm2d::new(out_c, rng),
            projection,
            out_mask: Vec::new(),
        }
    }

    /// Output channels.
    pub fn out_c(&self) -> usize {
        self.expand.geometry().out_c
    }

    /// Output spatial height.
    pub fn out_h(&self) -> usize {
        self.expand.geometry().out_h()
    }
}

impl Layer for BottleneckBlock {
    fn forward(
        &mut self,
        x: Tensor,
        exec: &mut ExecutionContext,
        algo: &Philox,
        step: u64,
        training: bool,
    ) -> Tensor {
        let m = self.reduce.forward(x.clone(), exec, algo, step, training);
        let m = self.bn1.forward(m, exec, algo, step, training);
        let m = self.relu1.forward(m, exec, algo, step, training);
        let m = self.mid.forward(m, exec, algo, step, training);
        let m = self.bn2.forward(m, exec, algo, step, training);
        let m = self.relu2.forward(m, exec, algo, step, training);
        let m = self.expand.forward(m, exec, algo, step, training);
        let mut main = self.bn3.forward(m, exec, algo, step, training);

        let shortcut = match &mut self.projection {
            Some((conv, bn)) => {
                let s = conv.forward(x, exec, algo, step, training);
                bn.forward(s, exec, algo, step, training)
            }
            None => x,
        };
        main.add_assign(&shortcut).expect("bottleneck shape");
        let mut mask = vec![0f32; main.len()];
        for (v, mk) in main.as_mut_slice().iter_mut().zip(&mut mask) {
            if *v > 0.0 {
                *mk = 1.0;
            } else {
                *v = 0.0;
            }
        }
        if training {
            self.out_mask = mask;
        }
        main
    }

    fn backward(&mut self, mut dy: Tensor, exec: &mut ExecutionContext) -> Tensor {
        assert!(!self.out_mask.is_empty(), "backward before forward");
        for (g, m) in dy.as_mut_slice().iter_mut().zip(&self.out_mask) {
            *g *= m;
        }
        let d = self.bn3.backward(dy.clone(), exec);
        let d = self.expand.backward(d, exec);
        let d = self.relu2.backward(d, exec);
        let d = self.bn2.backward(d, exec);
        let d = self.mid.backward(d, exec);
        let d = self.relu1.backward(d, exec);
        let d = self.bn1.backward(d, exec);
        let mut dx = self.reduce.backward(d, exec);
        let ds = match &mut self.projection {
            Some((conv, bn)) => {
                let d = bn.backward(dy, exec);
                conv.backward(d, exec)
            }
            None => dy,
        };
        dx.add_assign(&ds).expect("bottleneck grad shape");
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        self.reduce.visit_params(f);
        self.bn1.visit_params(f);
        self.mid.visit_params(f);
        self.bn2.visit_params(f);
        self.expand.visit_params(f);
        self.bn3.visit_params(f);
        if let Some((conv, bn)) = &mut self.projection {
            conv.visit_params(f);
            bn.visit_params(f);
        }
    }

    fn param_count(&self) -> usize {
        let mut n = self.reduce.param_count()
            + self.bn1.param_count()
            + self.mid.param_count()
            + self.bn2.param_count()
            + self.expand.param_count()
            + self.bn3.param_count();
        if let Some((conv, bn)) = &self.projection {
            n += conv.param_count() + bn.param_count();
        }
        n
    }

    fn kind(&self) -> &'static str {
        "bottleneck_block"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detrand::StreamId;
    use hwsim::{Device, ExecutionMode};
    use nstensor::Shape;

    fn setup(
        in_c: usize,
        out_c: usize,
        stride: usize,
    ) -> (ResidualBlock, ExecutionContext, Philox) {
        let root = Philox::from_seed(21);
        let mut rng = root.stream(StreamId::INIT.child(0));
        (
            ResidualBlock::new(in_c, out_c, stride, 8, 8, &mut rng),
            ExecutionContext::new(Device::cpu(), ExecutionMode::Default, 0),
            root,
        )
    }

    #[test]
    fn identity_block_shapes() {
        let (mut b, mut exec, root) = setup(8, 8, 1);
        let x = Tensor::full(Shape::of(&[2, 8, 8, 8]), 0.1);
        let y = b.forward(x, &mut exec, &root, 0, true);
        assert_eq!(y.shape().dims(), &[2, 8, 8, 8]);
        let dx = b.backward(Tensor::full(y.shape(), 1.0), &mut exec);
        assert_eq!(dx.shape().dims(), &[2, 8, 8, 8]);
    }

    #[test]
    fn downsampling_block_shapes_and_projection() {
        let (mut b, mut exec, root) = setup(8, 16, 2);
        assert_eq!(b.out_c(), 16);
        assert_eq!(b.out_h(), 4);
        let x = Tensor::full(Shape::of(&[2, 8, 8, 8]), 0.1);
        let y = b.forward(x, &mut exec, &root, 0, true);
        assert_eq!(y.shape().dims(), &[2, 16, 4, 4]);
        let dx = b.backward(Tensor::full(y.shape(), 1.0), &mut exec);
        assert_eq!(dx.shape().dims(), &[2, 8, 8, 8]);
    }

    #[test]
    fn params_cover_all_sublayers() {
        let (b, _, _) = setup(8, 16, 2);
        // conv1 (8·16·9 + 16) + bn1 (32) + conv2 (16·16·9 + 16) + bn2 (32)
        // + proj conv (8·16 + 16) + proj bn (32)
        let expected = (8 * 16 * 9 + 16) + 32 + (16 * 16 * 9 + 16) + 32 + (8 * 16 + 16) + 32;
        assert_eq!(b.param_count(), expected);
        let (mut b2, _, _) = setup(8, 16, 2);
        let mut count = 0;
        b2.visit_params(&mut |_, _| count += 1);
        assert_eq!(count, 12); // 6 sublayers × (param, grad) pairs of 2 each
    }

    #[test]
    fn bottleneck_shapes_and_gradients() {
        let root = Philox::from_seed(31);
        let mut rng = root.stream(StreamId::INIT.child(0));
        let mut b = BottleneckBlock::new(8, 4, 16, 2, 8, 8, &mut rng);
        assert_eq!(b.out_c(), 16);
        assert_eq!(b.out_h(), 4);
        let mut exec = ExecutionContext::new(Device::cpu(), ExecutionMode::Default, 0);
        let x = Tensor::full(Shape::of(&[2, 8, 8, 8]), 0.2);
        let y = b.forward(x, &mut exec, &root, 0, true);
        assert_eq!(y.shape().dims(), &[2, 16, 4, 4]);
        let dx = b.backward(Tensor::full(y.shape(), 1.0), &mut exec);
        assert_eq!(dx.shape().dims(), &[2, 8, 8, 8]);
        let mut pairs = 0;
        b.visit_params(&mut |_, _| pairs += 1);
        assert_eq!(pairs, 16); // 8 sublayers × 2 tensors
        assert_eq!(b.kind(), "bottleneck_block");
    }

    #[test]
    fn bottleneck_identity_variant_has_no_projection() {
        let root = Philox::from_seed(32);
        let mut rng = root.stream(StreamId::INIT.child(0));
        let with_proj = BottleneckBlock::new(8, 4, 16, 1, 8, 8, &mut rng).param_count();
        let mut rng = root.stream(StreamId::INIT.child(0));
        let identity = BottleneckBlock::new(16, 4, 16, 1, 8, 8, &mut rng).param_count();
        // The identity block lacks the projection conv's parameters.
        assert!(identity < with_proj + 16 * 16 + 16);
    }

    #[test]
    fn outputs_are_nonnegative() {
        let (mut b, mut exec, root) = setup(4, 4, 1);
        let mut x = Tensor::zeros(Shape::of(&[1, 4, 8, 8]));
        let mut rng = root.stream(StreamId::TEST);
        for v in x.as_mut_slice() {
            *v = rng.normal();
        }
        let y = b.forward(x, &mut exec, &root, 0, true);
        assert!(y.as_slice().iter().all(|&v| v >= 0.0));
    }
}
