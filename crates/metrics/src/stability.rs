//! Replica-divergence metrics: churn and weight-space distance.

use nstensor::reduce::sum_ordered_f64;

/// Predictive churn between two models' predictions (Milani Fard et al.,
/// 2016; paper Eq. 2): the fraction of examples on which they disagree.
///
/// # Panics
///
/// Panics if the prediction vectors have different lengths.
///
/// # Example
///
/// ```
/// assert_eq!(nsmetrics::churn(&[1, 2, 3], &[1, 0, 3]), 1.0 / 3.0);
/// ```
pub fn churn<T: PartialEq>(a: &[T], b: &[T]) -> f64 {
    assert_eq!(a.len(), b.len(), "prediction length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let disagreements = a.iter().zip(b).filter(|(x, y)| x != y).count();
    disagreements as f64 / a.len() as f64
}

/// L2 distance between two weight vectors after normalizing each to unit
/// norm (the paper's `l2` measure, §2.1).
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn l2_normalized(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "weight length mismatch");
    let na = sum_ordered_f64(a.iter().map(|&x| (x as f64) * (x as f64))).sqrt();
    let nb = sum_ordered_f64(b.iter().map(|&x| (x as f64) * (x as f64))).sqrt();
    if na == 0.0 || nb == 0.0 {
        // A zero vector has no direction; distance to the other unit vector.
        return if na == 0.0 && nb == 0.0 { 0.0 } else { 1.0 };
    }
    sum_ordered_f64(a.iter().zip(b).map(|(&x, &y)| {
        let d = x as f64 / na - y as f64 / nb;
        d * d
    }))
    .sqrt()
}

/// Mean churn over all unordered replica pairs.
pub fn pairwise_mean_churn<T: PartialEq>(replica_preds: &[Vec<T>]) -> f64 {
    pairwise_mean(replica_preds, |a, b| churn(a, b))
}

/// Mean normalized-L2 weight distance over all unordered replica pairs.
pub fn pairwise_mean_l2(replica_weights: &[Vec<f32>]) -> f64 {
    pairwise_mean(replica_weights, l2_normalized)
}

fn pairwise_mean<T>(items: &[Vec<T>], f: impl Fn(&[T], &[T]) -> f64) -> f64 {
    let n = items.len();
    if n < 2 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            sum += f(&items[i], &items[j]);
            pairs += 1;
        }
    }
    sum / pairs as f64
}

#[cfg(test)]
// Tests assert exact float values: bit-identical replay is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn churn_is_zero_for_identical() {
        assert_eq!(churn::<u32>(&[], &[]), 0.0);
        assert_eq!(churn(&[1, 2, 3], &[1, 2, 3]), 0.0);
    }

    #[test]
    fn churn_is_symmetric_and_bounded() {
        let a = [1u32, 2, 3, 4];
        let b = [1u32, 0, 0, 4];
        assert_eq!(churn(&a, &b), churn(&b, &a));
        assert_eq!(churn(&a, &b), 0.5);
        assert_eq!(churn(&a, &[0, 0, 0, 0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn churn_rejects_length_mismatch() {
        churn(&[1], &[1, 2]);
    }

    #[test]
    fn l2_of_identical_is_zero() {
        let w = vec![1.0f32, -2.0, 3.0];
        assert_eq!(l2_normalized(&w, &w), 0.0);
    }

    #[test]
    fn l2_is_scale_invariant() {
        let a = vec![1.0f32, 2.0, 3.0];
        let b: Vec<f32> = a.iter().map(|x| x * 7.5).collect();
        assert!(
            l2_normalized(&a, &b) < 1e-7,
            "scaled copies should coincide"
        );
    }

    #[test]
    fn l2_of_opposite_unit_vectors_is_two() {
        let a = vec![1.0f32, 0.0];
        let b = vec![-1.0f32, 0.0];
        assert!((l2_normalized(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn l2_handles_zero_vectors() {
        let z = vec![0.0f32; 3];
        let a = vec![1.0f32, 0.0, 0.0];
        assert_eq!(l2_normalized(&z, &z), 0.0);
        assert_eq!(l2_normalized(&z, &a), 1.0);
    }

    #[test]
    fn pairwise_means() {
        let preds = vec![vec![1u32, 1], vec![1, 0], vec![0, 0]];
        // Pairs: (0,1) churn .5, (0,2) churn 1.0, (1,2) churn .5 → mean 2/3.
        assert!((pairwise_mean_churn(&preds) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(pairwise_mean_churn::<u32>(&[]), 0.0);
        assert_eq!(pairwise_mean_churn(&[vec![1u32]]), 0.0);

        let ws = vec![vec![1.0f32, 0.0], vec![1.0f32, 0.0]];
        assert_eq!(pairwise_mean_l2(&ws), 0.0);
    }
}
