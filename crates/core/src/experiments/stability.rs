//! The stability experiments: Table 2 and Figures 1, 2, 4, 5, 9, 10.

use crate::fleet::{run_variant_fleet, FleetOptions};
use crate::report::{render_table, stability_report, StabilityReport};
use crate::resume::{run_variant_resumable, CheckpointStore};
use crate::runner::{run_variant, PreparedTask, VariantRuns};
use crate::settings::ExperimentSettings;
use crate::task::TaskSpec;
use crate::variant::NoiseVariant;
use hwsim::Device;
use serde::{Deserialize, Serialize};

/// The result of a stability grid: one report per
/// (task, device, variant) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StabilityGrid {
    /// All cell reports.
    pub reports: Vec<StabilityReport>,
}

impl StabilityGrid {
    /// The reports for one device (a Figure-1/9/10 panel).
    pub fn for_device(&self, device: &str) -> Vec<&StabilityReport> {
        self.reports.iter().filter(|r| r.device == device).collect()
    }

    /// The report for one exact cell.
    pub fn cell(
        &self,
        task: &str,
        device: &str,
        variant: NoiseVariant,
    ) -> Option<&StabilityReport> {
        self.reports
            .iter()
            .find(|r| r.task == task && r.device == device && r.variant == variant)
    }
}

/// The shared grid driver: visits every (task × device × variant) cell
/// through `run_cell`, so the in-process, resumable, and fleet grids are
/// one loop with three replica engines — they cannot drift apart.
fn run_grid_with<F>(
    tasks: &[TaskSpec],
    devices: &[Device],
    variants: &[NoiseVariant],
    mut run_cell: F,
) -> std::io::Result<StabilityGrid>
where
    F: FnMut(&PreparedTask, &Device, NoiseVariant) -> std::io::Result<VariantRuns>,
{
    let mut reports = Vec::new();
    for task in tasks {
        let prepared = PreparedTask::prepare(task);
        for device in devices {
            for &variant in variants {
                let runs = run_cell(&prepared, device, variant)?;
                reports.push(stability_report(&prepared, device, variant, &runs));
            }
        }
    }
    Ok(StabilityGrid { reports })
}

/// Runs every (task × device × variant) combination.
pub fn run_stability_grid(
    tasks: &[TaskSpec],
    devices: &[Device],
    variants: &[NoiseVariant],
    settings: &ExperimentSettings,
) -> StabilityGrid {
    run_grid_with(tasks, devices, variants, |prepared, device, variant| {
        Ok(run_variant(prepared, device, variant, settings))
    })
    .expect("in-process grid cells are infallible")
}

/// [`run_stability_grid`] with durable per-cell progress: completed
/// replicas are loaded from `store`, in-flight replicas checkpoint every
/// `checkpoint_every_epochs` epochs, and an interrupted grid resumes from
/// wherever it stopped — mid-fleet and mid-training — bit-identically.
///
/// # Errors
///
/// Only store IO failures; training faults degrade into flagged reports.
pub fn run_stability_grid_resumable(
    tasks: &[TaskSpec],
    devices: &[Device],
    variants: &[NoiseVariant],
    settings: &ExperimentSettings,
    store: &CheckpointStore,
    checkpoint_every_epochs: u32,
) -> std::io::Result<StabilityGrid> {
    run_grid_with(tasks, devices, variants, |prepared, device, variant| {
        run_variant_resumable(
            prepared,
            device,
            variant,
            settings,
            store,
            checkpoint_every_epochs,
        )
    })
}

/// [`run_stability_grid_resumable`] with process isolation: every cell's
/// replicas run in supervised worker processes
/// ([`crate::fleet::run_variant_fleet`]), sharing `store` cells — and
/// therefore resumability and bit-identity — with the in-process engines.
///
/// # Errors
///
/// Store/spawn IO failures or an invalid configuration; worker deaths
/// degrade into flagged reports.
pub fn run_stability_grid_fleet(
    tasks: &[TaskSpec],
    devices: &[Device],
    variants: &[NoiseVariant],
    settings: &ExperimentSettings,
    store: &CheckpointStore,
    checkpoint_every_epochs: u32,
    opts: &FleetOptions,
) -> std::io::Result<StabilityGrid> {
    run_grid_with(tasks, devices, variants, |prepared, device, variant| {
        run_variant_fleet(
            prepared,
            device,
            variant,
            settings,
            store,
            checkpoint_every_epochs,
            opts,
        )
    })
}

/// ImageNet-sim rides the Table-2 grid with a capped fleet (the paper
/// trains 5 replicas there).
fn imagenet_settings(settings: &ExperimentSettings) -> ExperimentSettings {
    ExperimentSettings {
        replicas: settings.replicas.min(5),
        ..*settings
    }
}

/// The paper's Table-2 grid: the three CIFAR tasks on P100/RTX5000/V100
/// plus ResNet-50/ImageNet-sim on V100, under the three measured variants.
pub fn run_table2_grid(settings: &ExperimentSettings) -> StabilityGrid {
    let mut grid = run_stability_grid(
        &TaskSpec::table2_tasks(),
        &Device::stability_gpus(),
        &NoiseVariant::MEASURED,
        settings,
    );
    // ImageNet-sim row (V100 only; the paper trains 5 replicas).
    let extra = run_stability_grid(
        &[TaskSpec::resnet50_imagenet()],
        &[Device::v100()],
        &NoiseVariant::MEASURED,
        &imagenet_settings(settings),
    );
    grid.reports.extend(extra.reports);
    grid
}

/// [`run_table2_grid`] with durable progress under `store` (see
/// [`run_stability_grid_resumable`]).
///
/// # Errors
///
/// Only store IO failures.
pub fn run_table2_grid_resumable(
    settings: &ExperimentSettings,
    store: &CheckpointStore,
    checkpoint_every_epochs: u32,
) -> std::io::Result<StabilityGrid> {
    let mut grid = run_stability_grid_resumable(
        &TaskSpec::table2_tasks(),
        &Device::stability_gpus(),
        &NoiseVariant::MEASURED,
        settings,
        store,
        checkpoint_every_epochs,
    )?;
    let extra = run_stability_grid_resumable(
        &[TaskSpec::resnet50_imagenet()],
        &[Device::v100()],
        &NoiseVariant::MEASURED,
        &imagenet_settings(settings),
        store,
        checkpoint_every_epochs,
    )?;
    grid.reports.extend(extra.reports);
    Ok(grid)
}

/// [`run_table2_grid`] under process-isolated workers (see
/// [`run_stability_grid_fleet`]).
///
/// # Errors
///
/// Store/spawn IO failures or an invalid configuration.
pub fn run_table2_grid_fleet(
    settings: &ExperimentSettings,
    store: &CheckpointStore,
    checkpoint_every_epochs: u32,
    opts: &FleetOptions,
) -> std::io::Result<StabilityGrid> {
    let mut grid = run_stability_grid_fleet(
        &TaskSpec::table2_tasks(),
        &Device::stability_gpus(),
        &NoiseVariant::MEASURED,
        settings,
        store,
        checkpoint_every_epochs,
        opts,
    )?;
    let extra = run_stability_grid_fleet(
        &[TaskSpec::resnet50_imagenet()],
        &[Device::v100()],
        &NoiseVariant::MEASURED,
        &imagenet_settings(settings),
        store,
        checkpoint_every_epochs,
        opts,
    )?;
    grid.reports.extend(extra.reports);
    Ok(grid)
}

/// Renders the Table-2 text table from a grid.
pub fn render_table2(grid: &StabilityGrid) -> String {
    let mut rows = Vec::new();
    for r in &grid.reports {
        rows.push(vec![
            r.device.clone(),
            r.task.clone(),
            r.variant.label().to_string(),
            format!(
                "{:.2}% ± {:.2}",
                100.0 * r.mean_accuracy,
                100.0 * r.std_accuracy
            ),
        ]);
    }
    render_table(
        "Table 2: test accuracy ± stddev per hardware × task × noise variant",
        &["Hardware", "Task", "Variant", "Test accuracy"],
        &rows,
    )
}

/// Extracts one device's Figure-1-style panel (Fig. 1 = V100,
/// Fig. 9 = P100, Fig. 10 = RTX5000) as rendered rows.
pub fn render_fig_panel(grid: &StabilityGrid, device: &str, figure: &str) -> String {
    let mut rows = Vec::new();
    for r in grid.for_device(device) {
        rows.push(vec![
            r.task.clone(),
            r.variant.label().to_string(),
            format!("{:.3}", 100.0 * r.std_accuracy),
            format!("{:.4}", r.churn),
            format!("{:.4}", r.l2),
        ]);
    }
    render_table(
        &format!("{figure}: stability by noise source on {device}"),
        &["Task", "Variant", "stddev(acc) %", "churn", "l2"],
        &rows,
    )
}

/// The Figure-2 cells: the batch-norm ablation of the small CNN on V100.
fn fig2_tasks() -> [TaskSpec; 2] {
    [
        TaskSpec::small_cnn_cifar10(),
        TaskSpec::small_cnn_bn_cifar10(),
    ]
}

/// Figure 2: the batch-norm ablation of the small CNN on V100.
pub fn fig2(settings: &ExperimentSettings) -> StabilityGrid {
    run_stability_grid(
        &fig2_tasks(),
        &[Device::v100()],
        &NoiseVariant::MEASURED,
        settings,
    )
}

/// [`fig2`] with durable progress under `store`.
///
/// # Errors
///
/// Only store IO failures.
pub fn fig2_resumable(
    settings: &ExperimentSettings,
    store: &CheckpointStore,
    checkpoint_every_epochs: u32,
) -> std::io::Result<StabilityGrid> {
    run_stability_grid_resumable(
        &fig2_tasks(),
        &[Device::v100()],
        &NoiseVariant::MEASURED,
        settings,
        store,
        checkpoint_every_epochs,
    )
}

/// [`fig2`] under process-isolated workers (see
/// [`run_stability_grid_fleet`]). The CI resilience job runs this under
/// pinned hang+abort chaos and asserts bit-identity with the in-process
/// golden run.
///
/// # Errors
///
/// Store/spawn IO failures or an invalid configuration.
pub fn fig2_fleet(
    settings: &ExperimentSettings,
    store: &CheckpointStore,
    checkpoint_every_epochs: u32,
    opts: &FleetOptions,
) -> std::io::Result<StabilityGrid> {
    run_stability_grid_fleet(
        &fig2_tasks(),
        &[Device::v100()],
        &NoiseVariant::MEASURED,
        settings,
        store,
        checkpoint_every_epochs,
        opts,
    )
}

/// A Figure-4 series: per-class variance amplification for one task.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Series {
    /// Task name.
    pub task: String,
    /// Variant.
    pub variant: NoiseVariant,
    /// Top-line accuracy stddev.
    pub overall_std: f64,
    /// Largest per-class accuracy stddev.
    pub max_class_std: f64,
    /// Amplification ratio (the paper's 4× / 23×).
    pub ratio: f64,
}

/// Derives Figure 4 (per-class vs overall variance) from already-run
/// V100 grid reports.
pub fn fig4_from_reports(grid: &StabilityGrid) -> Vec<Fig4Series> {
    grid.reports
        .iter()
        .filter(|r| r.device == "V100" && !r.per_class_std.is_empty())
        .map(|r| {
            let max_class = r.per_class_std.iter().cloned().fold(0.0f64, f64::max);
            Fig4Series {
                task: r.task.clone(),
                variant: r.variant,
                overall_std: r.std_accuracy,
                max_class_std: max_class,
                ratio: r.max_per_class_ratio,
            }
        })
        .collect()
}

/// The Figure-5 accelerator sweep, including Tensor Cores and the TPU.
fn fig5_devices() -> [Device; 5] {
    [
        Device::p100(),
        Device::v100(),
        Device::rtx5000(),
        Device::rtx5000_tensor_cores(),
        Device::tpu_v2(),
    ]
}

/// Figure 5: ResNet-18/CIFAR-100-sim across accelerator types, including
/// Tensor Cores and the TPU.
pub fn fig5(settings: &ExperimentSettings) -> StabilityGrid {
    run_stability_grid(
        &[TaskSpec::resnet18_cifar100()],
        &fig5_devices(),
        &NoiseVariant::MEASURED,
        settings,
    )
}

/// [`fig5`] with durable progress under `store`.
///
/// # Errors
///
/// Only store IO failures.
pub fn fig5_resumable(
    settings: &ExperimentSettings,
    store: &CheckpointStore,
    checkpoint_every_epochs: u32,
) -> std::io::Result<StabilityGrid> {
    run_stability_grid_resumable(
        &[TaskSpec::resnet18_cifar100()],
        &fig5_devices(),
        &NoiseVariant::MEASURED,
        settings,
        store,
        checkpoint_every_epochs,
    )
}

/// [`fig5`] under process-isolated workers (see
/// [`run_stability_grid_fleet`]).
///
/// # Errors
///
/// Store/spawn IO failures or an invalid configuration.
pub fn fig5_fleet(
    settings: &ExperimentSettings,
    store: &CheckpointStore,
    checkpoint_every_epochs: u32,
    opts: &FleetOptions,
) -> std::io::Result<StabilityGrid> {
    run_stability_grid_fleet(
        &[TaskSpec::resnet18_cifar100()],
        &fig5_devices(),
        &NoiseVariant::MEASURED,
        settings,
        store,
        checkpoint_every_epochs,
        opts,
    )
}

#[cfg(test)]
// Tests assert exact float values: bit-identical replay is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::task::DataSource;
    use nsdata::GaussianSpec;

    fn tiny_task(name: &str) -> TaskSpec {
        let mut t = TaskSpec::small_cnn_cifar10();
        t.name = name.into();
        t.data = DataSource::Gaussian(GaussianSpec {
            classes: 3,
            train_per_class: 8,
            test_per_class: 6,
            ..GaussianSpec::cifar10_sim()
        });
        t.train.epochs = 1;
        t.augment = false;
        t
    }

    fn tiny_settings() -> ExperimentSettings {
        ExperimentSettings {
            replicas: 2,
            ..ExperimentSettings::default()
        }
    }

    #[test]
    fn grid_covers_all_cells() {
        let grid = run_stability_grid(
            &[tiny_task("A"), tiny_task("B")],
            &[Device::cpu()],
            &[NoiseVariant::Algo, NoiseVariant::Control],
            &tiny_settings(),
        );
        assert_eq!(grid.reports.len(), 4);
        assert!(grid.cell("A", "CPU", NoiseVariant::Algo).is_some());
        assert!(grid.cell("A", "CPU", NoiseVariant::Impl).is_none());
        assert_eq!(grid.for_device("CPU").len(), 4);
    }

    #[test]
    fn control_cells_have_zero_variance() {
        let grid = run_stability_grid(
            &[tiny_task("A")],
            &[Device::v100()],
            &[NoiseVariant::Control],
            &tiny_settings(),
        );
        let r = &grid.reports[0];
        assert_eq!(r.std_accuracy, 0.0);
        assert_eq!(r.churn, 0.0);
        assert_eq!(r.l2, 0.0);
    }

    #[test]
    fn renderers_produce_tables() {
        let grid = run_stability_grid(
            &[tiny_task("A")],
            &[Device::v100()],
            &[NoiseVariant::Algo],
            &tiny_settings(),
        );
        let t2 = render_table2(&grid);
        assert!(t2.contains("Table 2"));
        assert!(t2.contains("V100"));
        let panel = render_fig_panel(&grid, "V100", "Figure 1");
        assert!(panel.contains("stddev(acc)"));
        let fig4 = fig4_from_reports(&grid);
        assert_eq!(fig4.len(), 1);
        assert!(fig4[0].max_class_std >= 0.0);
    }
}
