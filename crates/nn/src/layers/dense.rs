//! The fully-connected layer.

use super::Layer;
use crate::init::Init;
use detrand::{Philox, StreamRng};
use hwsim::{ExecutionContext, OpClass};
use nstensor::{matmul_a_bt_ws, matmul_at_b_ws, matmul_ws, ops, Shape, Tensor, Workspace};

/// A dense (fully-connected) layer: `y = x·W + b` on `[N, in]` inputs.
#[derive(Debug)]
pub struct Dense {
    w: Tensor, // [in, out]
    b: Tensor, // [out]
    dw: Tensor,
    db: Tensor,
    cached_x: Option<Tensor>,
    /// Recycled scratch (transposes, packed GEMM panels) reused across
    /// training steps instead of re-allocated per call.
    ws: Workspace,
}

impl Dense {
    /// Creates the layer with Glorot-uniform weights drawn from `rng`.
    pub fn new(in_features: usize, out_features: usize, rng: &mut StreamRng) -> Self {
        let w = Init::GlorotUniform.tensor(
            Shape::of(&[in_features, out_features]),
            in_features,
            out_features,
            rng,
        );
        let b = Init::SmallPositive.tensor(Shape::of(&[out_features]), 1, 1, rng);
        Self {
            dw: Tensor::zeros(w.shape()),
            db: Tensor::zeros(b.shape()),
            w,
            b,
            cached_x: None,
            ws: Workspace::new(),
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.w.shape().dim(0)
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.w.shape().dim(1)
    }

    /// Immutable view of the weights.
    pub fn weights(&self) -> &Tensor {
        &self.w
    }
}

impl Layer for Dense {
    fn forward(
        &mut self,
        x: Tensor,
        exec: &mut ExecutionContext,
        _algo: &Philox,
        _step: u64,
        training: bool,
    ) -> Tensor {
        let threads = exec.threads();
        let mut y = matmul_ws(
            &x,
            &self.w,
            exec.reducer(OpClass::MatmulForward),
            threads,
            &mut self.ws,
        )
        .expect("dense forward shape");
        ops::add_row_bias(&mut y, &self.b).expect("bias shape");
        if training {
            self.cached_x = Some(x);
        }
        y
    }

    fn backward(&mut self, dy: Tensor, exec: &mut ExecutionContext) -> Tensor {
        let x = self.cached_x.take().expect("backward before forward");
        let threads = exec.threads();
        // dW = xᵀ·dy — the cross-batch weight-gradient reduction.
        self.dw = matmul_at_b_ws(
            &x,
            &dy,
            exec.reducer(OpClass::WeightGrad),
            threads,
            &mut self.ws,
        )
        .expect("dense dW shape");
        self.db = ops::sum_rows(&dy, exec.reducer(OpClass::WeightGrad)).expect("dense db shape");
        // dx = dy·Wᵀ.
        matmul_a_bt_ws(
            &dy,
            &self.w,
            exec.reducer(OpClass::InputGrad),
            threads,
            &mut self.ws,
        )
        .expect("dense dx shape")
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.w, &mut self.dw);
        f(&mut self.b, &mut self.db);
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn kind(&self) -> &'static str {
        "dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detrand::StreamId;
    use hwsim::{Device, ExecutionMode};

    fn make(inf: usize, outf: usize) -> (Dense, ExecutionContext, Philox) {
        let root = Philox::from_seed(3);
        let mut rng = root.stream(StreamId::INIT.child(0));
        (
            Dense::new(inf, outf, &mut rng),
            ExecutionContext::new(Device::cpu(), ExecutionMode::Default, 0),
            root,
        )
    }

    #[test]
    fn forward_shape_and_bias() {
        let (mut l, mut exec, root) = make(4, 3);
        let x = Tensor::zeros(Shape::of(&[2, 4]));
        let y = l.forward(x, &mut exec, &root, 0, false);
        // Zero input → output equals the bias (small positive constant).
        assert_eq!(y.shape().dims(), &[2, 3]);
        assert!(y.as_slice().iter().all(|&v| (v - 0.01).abs() < 1e-7));
    }

    #[test]
    fn gradient_check() {
        let (mut l, mut exec, root) = make(3, 2);
        let x = Tensor::from_vec(Shape::of(&[2, 3]), vec![0.5, -1.0, 2.0, 1.5, 0.3, -0.7]).unwrap();
        // L = Σ y² — dL/dy = 2y.
        let y = l.forward(x.clone(), &mut exec, &root, 0, true);
        let mut dy = y.clone();
        dy.scale(2.0);
        let dx = l.backward(dy, &mut exec);

        let mut loss = |l: &mut Dense, x: &Tensor| -> f64 {
            let y = l.forward(x.clone(), &mut exec, &root, 0, false);
            y.as_slice().iter().map(|&v| (v as f64).powi(2)).sum()
        };
        let eps = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fd = (loss(&mut l, &xp) - loss(&mut l, &xm)) / (2.0 * eps as f64);
            let an = dx.as_slice()[i] as f64;
            assert!(
                (fd - an).abs() < 1e-2 * fd.abs().max(1.0),
                "dx[{i}] {fd} vs {an}"
            );
        }
    }

    #[test]
    fn accessors() {
        let (l, _, _) = make(5, 7);
        assert_eq!(l.in_features(), 5);
        assert_eq!(l.out_features(), 7);
        assert_eq!(l.param_count(), 42);
        assert_eq!(l.kind(), "dense");
    }
}
