//! Checked-in baseline: known findings warn, new findings fail.
//!
//! Adopting a new rule on a living tree should not require fixing every
//! historical hit in one PR. `detlint --write-baseline` records the
//! current findings; subsequent `--baseline` runs match findings against
//! that record and demote matches to *grandfathered* (reported, but not
//! gate-failing). Anything not in the baseline is new and fails as
//! usual.
//!
//! Matching is by `(rule, file, context)` where `context` is an FNV-1a 64
//! hash of the finding line's trimmed source text — so a finding keeps
//! its grandfathered status when unrelated edits shift its line number,
//! but loses it when the hazardous line itself changes. Entries are a
//! multiset: two identical hazards on identical lines need two entries.

use std::collections::BTreeMap;
use std::path::Path;

use serde_json::Value;

use crate::cache::fnv1a64;
use crate::{RuleId, ScanReport};

/// One grandfathered finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// The rule that fired.
    pub rule: RuleId,
    /// Workspace-relative path.
    pub file: String,
    /// Line at capture time — informational only, not used for matching.
    pub line: u32,
    /// FNV-1a 64 of the finding line's trimmed text.
    pub context: u64,
}

/// A loaded (or freshly captured) baseline.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    /// Entries in capture order.
    pub entries: Vec<Entry>,
}

/// Hashes the context line for a finding: the trimmed text of `line`
/// (1-based) in `source`, or the empty string when out of range.
pub fn line_context(source: &str, line: u32) -> u64 {
    let text = line
        .checked_sub(1)
        .and_then(|i| source.lines().nth(i as usize))
        .unwrap_or("")
        .trim();
    fnv1a64(text.as_bytes())
}

impl Baseline {
    /// Captures the report's current findings against the sources under
    /// `root`.
    pub fn capture(report: &ScanReport, root: &Path) -> std::io::Result<Baseline> {
        let mut sources: BTreeMap<&str, String> = BTreeMap::new();
        let mut entries = Vec::new();
        for f in &report.findings {
            if !sources.contains_key(f.file.as_str()) {
                let text = std::fs::read_to_string(root.join(&f.file)).unwrap_or_default();
                sources.insert(&f.file, text);
            }
            entries.push(Entry {
                rule: f.rule,
                file: f.file.clone(),
                line: f.line,
                context: line_context(&sources[f.file.as_str()], f.line),
            });
        }
        Ok(Baseline { entries })
    }

    /// Loads a baseline file.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc: Value = serde_json::from_str(&text)
            .map_err(|e| format!("{}: invalid JSON: {e:?}", path.display()))?;
        let entries = doc
            .get("entries")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("{}: missing `entries` array", path.display()))?;
        let mut out = Vec::new();
        for (i, e) in entries.iter().enumerate() {
            let parse = || -> Option<Entry> {
                Some(Entry {
                    rule: RuleId::parse(e.get("rule")?.as_str()?)?,
                    file: e.get("file")?.as_str()?.to_string(),
                    line: u32::try_from(e.get("line")?.as_u64()?).ok()?,
                    context: u64::from_str_radix(e.get("context")?.as_str()?, 16).ok()?,
                })
            };
            out.push(parse().ok_or_else(|| format!("{}: bad entry #{i}", path.display()))?);
        }
        Ok(Baseline { entries: out })
    }

    /// Serializes the baseline (stable order: sorted entries).
    pub fn to_json(&self) -> Value {
        let mut entries = self.entries.clone();
        entries.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        serde_json::json!({
            "version": 1,
            "entries": entries
                .iter()
                .map(|e| {
                    serde_json::json!({
                        "rule": e.rule.as_str(),
                        "file": e.file,
                        "line": e.line,
                        "context": format!("{:016x}", e.context),
                    })
                })
                .collect::<Vec<_>>(),
        })
    }

    /// Writes the baseline atomically (tmp + rename).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let text = serde_json::to_string_pretty(&self.to_json())
            .map_err(|e| std::io::Error::other(format!("{e:?}")))?;
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, text + "\n")?;
        std::fs::rename(&tmp, path)
    }

    /// Splits `report.findings` against the baseline: matched findings
    /// move to `report.grandfathered`, the rest stay gate-failing.
    pub fn apply(&self, report: &mut ScanReport, root: &Path) {
        // Multiset of available entries.
        let mut budget: BTreeMap<(RuleId, String, u64), usize> = BTreeMap::new();
        for e in &self.entries {
            *budget
                .entry((e.rule, e.file.clone(), e.context))
                .or_insert(0) += 1;
        }
        let mut sources: BTreeMap<String, String> = BTreeMap::new();
        let findings = std::mem::take(&mut report.findings);
        for f in findings {
            let source = sources
                .entry(f.file.clone())
                .or_insert_with(|| std::fs::read_to_string(root.join(&f.file)).unwrap_or_default());
            let ctx = line_context(source, f.line);
            match budget.get_mut(&(f.rule, f.file.clone(), ctx)) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    report.grandfathered.push(f);
                }
                _ => report.findings.push(f),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Config;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("detlint-baseline-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(dir.join("src")).unwrap();
        dir
    }

    #[test]
    fn baseline_round_trips_to_zero_new_findings() {
        let dir = tmpdir("rt");
        let hazard = "pub fn f(xs: &[f32]) -> f32 {\n    xs.iter().sum()\n}\n";
        std::fs::write(dir.join("src/lib.rs"), hazard).unwrap();
        let config = Config::default();
        let mut report = crate::scan_workspace(&dir, &config).unwrap();
        assert_eq!(report.findings.len(), 1);

        let baseline = Baseline::capture(&report, &dir).unwrap();
        let path = dir.join("detlint.baseline.json");
        baseline.save(&path).unwrap();
        let reloaded = Baseline::load(&path).unwrap();
        assert_eq!(reloaded.entries, baseline.entries);

        reloaded.apply(&mut report, &dir);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.grandfathered.len(), 1);
        assert!(report.clean(), "grandfathered findings must not fail");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn new_findings_stay_failing_and_context_pins_the_line_text() {
        let dir = tmpdir("new");
        std::fs::write(
            dir.join("src/lib.rs"),
            "pub fn f(xs: &[f32]) -> f32 {\n    xs.iter().sum()\n}\n",
        )
        .unwrap();
        let config = Config::default();
        let report = crate::scan_workspace(&dir, &config).unwrap();
        let baseline = Baseline::capture(&report, &dir).unwrap();

        // A *different* hazard line is not covered by the old context.
        std::fs::write(
            dir.join("src/lib.rs"),
            "pub fn f(ys: &[f64]) -> f64 {\n    ys.iter().product()\n}\n",
        )
        .unwrap();
        let mut report = crate::scan_workspace(&dir, &config).unwrap();
        baseline.apply(&mut report, &dir);
        assert_eq!(report.findings.len(), 1, "changed hazard must be new");
        assert!(report.grandfathered.is_empty());

        // Line drift without text change keeps grandfathered status.
        std::fs::write(
            dir.join("src/lib.rs"),
            "// a comment pushing everything down\n\
             pub fn f(xs: &[f32]) -> f32 {\n    xs.iter().sum()\n}\n",
        )
        .unwrap();
        let mut report = crate::scan_workspace(&dir, &config).unwrap();
        baseline.apply(&mut report, &dir);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.grandfathered.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
