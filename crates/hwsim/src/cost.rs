//! The analytic kernel-time model.
//!
//! Simulated GPU time for an op is `flops / (peak_throughput × utilization)`
//! where utilization depends on (algorithm, pass, architecture, geometry).
//! The *structure* encodes the real mechanisms behind cuDNN's determinism
//! overhead:
//!
//! - Winograd/FFT transforms accelerate forward/dgrad for 3×3 and large
//!   filters; deterministic mode forfeits them, so the penalty grows with
//!   filter size.
//! - Deterministic weight-gradient kernels cannot use atomic split-K
//!   accumulation: they serialize the reduction over the output-pixel
//!   dimension, so layers whose spatial extent is large relative to their
//!   channel count (early layers, small CNNs on large inputs) pay the most,
//!   and older architectures (Pascal) with weaker serialized-reduction
//!   machinery pay more than Volta/Turing.
//!
//! The per-architecture constants are *calibrated* so the medium-CNN
//! filter-size sweep and 10-model sweep land in the ranges reported by the
//! paper (Fig. 8); see `DESIGN.md` §5 and the calibration tests in
//! `noisescope`.

use crate::device::{Architecture, Device};

/// Fraction of a memory-bound op's traffic that survives framework-level
/// kernel fusion (XLA/grappler fuse BN, activations and small elementwise
/// ops into the producing convolution's epilogue).
const FUSION_DISCOUNT: f64 = 0.15;

use crate::kernels::{ConvAlgorithm, ConvPass};
use crate::workload::WorkloadOp;
use nstensor::ConvGeometry;
use serde::{Deserialize, Serialize};

/// Per-architecture cost constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArchCosts {
    /// Utilization of deterministic implicit-GEMM relative to the atomic
    /// baseline (< 1: mild constant penalty).
    pub det_gemm_util: f32,
    /// Multiplicative utilization decay of deterministic forward/dgrad
    /// kernels per unit of filter size above 1 (tiling degrades).
    pub det_fwd_k_decay: f32,
    /// Weight of the spatial-skew serialization penalty in deterministic
    /// wgrad kernels.
    pub det_wgrad_skew: f32,
    /// Utilization of the direct deterministic fallback kernel.
    pub direct_det_util: f32,
    /// Winograd speedup factor for 3×3 stride-1 forward/dgrad.
    pub winograd_speedup: f32,
    /// FFT speedup: `winograd_speedup + fft_slope × (k − 3)` for k ≥ 4
    /// (transform-method gains keep growing with filter size).
    pub fft_slope: f32,
    /// Memory bandwidth in GB/s (memory-bound ops).
    pub mem_bw_gbps: f32,
    /// Deterministic-mode penalty on batch-norm statistics kernels.
    pub bn_det_penalty: f32,
}

/// The calibrated cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    costs: ArchCosts,
    eff_tflops: f32,
    arch: Architecture,
}

impl CostModel {
    /// Builds the cost model for a device.
    pub fn for_device(device: &Device) -> Self {
        Self {
            costs: Self::arch_costs(device.arch()),
            eff_tflops: device.eff_tflops(),
            arch: device.arch(),
        }
    }

    /// Calibrated constants per architecture (see module docs).
    pub fn arch_costs(arch: Architecture) -> ArchCosts {
        match arch {
            Architecture::Pascal => ArchCosts {
                det_gemm_util: 0.93,
                det_fwd_k_decay: 0.055,
                det_wgrad_skew: 4.5,
                direct_det_util: 0.015,
                winograd_speedup: 2.1,
                fft_slope: 0.30,
                mem_bw_gbps: 732.0,
                bn_det_penalty: 1.25,
            },
            Architecture::Volta => ArchCosts {
                det_gemm_util: 0.98,
                det_fwd_k_decay: 0.030,
                det_wgrad_skew: 0.90,
                direct_det_util: 0.11,
                winograd_speedup: 1.75,
                fft_slope: 0.030,
                mem_bw_gbps: 900.0,
                bn_det_penalty: 1.10,
            },
            Architecture::Turing => ArchCosts {
                det_gemm_util: 0.985,
                det_fwd_k_decay: 0.025,
                det_wgrad_skew: 0.60,
                direct_det_util: 0.17,
                winograd_speedup: 1.50,
                fft_slope: 0.030,
                mem_bw_gbps: 320.0,
                bn_det_penalty: 1.08,
            },
            // TPU and CPU are deterministic by design: no penalty structure.
            Architecture::TpuV2 | Architecture::Cpu => ArchCosts {
                det_gemm_util: 1.0,
                det_fwd_k_decay: 0.0,
                det_wgrad_skew: 0.0,
                direct_det_util: 1.0,
                winograd_speedup: 1.0,
                fft_slope: 0.0,
                mem_bw_gbps: 600.0,
                bn_det_penalty: 1.0,
            },
        }
    }

    /// The constants in use.
    pub fn costs(&self) -> ArchCosts {
        self.costs
    }

    /// Spatial-skew factor of a geometry: how much larger the output pixel
    /// count is than the channel parallelism available to a deterministic
    /// wgrad kernel. Early layers (huge spatial, few channels) score high;
    /// very thin channel products additionally starve the kernel's tile
    /// occupancy (the `1024 / channel_par` factor). Depthwise convolutions
    /// (modeled as `in_c == 1`) reduce per-channel independently and incur
    /// no serialization skew.
    pub fn spatial_skew(geom: &ConvGeometry) -> f32 {
        // Depthwise convolutions reduce per-channel independently, and RGB
        // stems use dedicated small-channel kernels with deterministic
        // layouts: neither incurs serialization skew.
        if geom.in_c <= 4 {
            return 0.0;
        }
        let pixels = geom.out_pixels() as f32;
        let channel_par = (geom.in_c * geom.out_c) as f32;
        if channel_par >= 1024.0 {
            // Enough filter-level parallelism for a fixed-order tree
            // reduction at full occupancy: no serialization skew.
            return 0.0;
        }
        (pixels / channel_par).sqrt() * (1024.0 / channel_par)
    }

    /// Simulated time (seconds) of one convolution pass under `alg`.
    ///
    /// # Panics
    ///
    /// Panics if the algorithm does not support the pass/geometry — callers
    /// must check [`ConvAlgorithm::supports`] first (the autotuner does).
    pub fn conv_pass_time(
        &self,
        alg: ConvAlgorithm,
        pass: ConvPass,
        geom: &ConvGeometry,
        batch: usize,
    ) -> f64 {
        assert!(
            alg.supports(pass, geom),
            "{alg:?} does not support {pass:?} for k={}",
            geom.k
        );
        let flops = geom.flops(batch) as f64;
        let peak = self.eff_tflops as f64 * 1e12;
        let c = self.costs;
        let util = match alg {
            ConvAlgorithm::WinogradNonfused => c.winograd_speedup,
            ConvAlgorithm::FftTiling => c.winograd_speedup + c.fft_slope * (geom.k as f32 - 3.0),
            ConvAlgorithm::ImplicitGemmAtomic => 1.0,
            ConvAlgorithm::ImplicitGemmDet => match pass {
                ConvPass::Forward | ConvPass::InputGrad => {
                    c.det_gemm_util * (1.0 - c.det_fwd_k_decay * (geom.k as f32 - 1.0)).max(0.2)
                }
                ConvPass::WeightGrad => {
                    c.det_gemm_util / (1.0 + c.det_wgrad_skew * Self::spatial_skew(geom))
                }
            },
            ConvAlgorithm::DirectDeterministic => c.direct_det_util,
        };
        flops / (peak * util as f64)
    }

    /// Simulated time of a non-convolution workload op, in seconds.
    ///
    /// `deterministic` applies the (small) deterministic-mode penalties for
    /// ops that have them (GEMM-backed dense layers, batch-norm statistics).
    pub fn misc_op_time(&self, op: &WorkloadOp, deterministic: bool) -> f64 {
        let c = self.costs;
        match *op {
            WorkloadOp::Conv { .. } => {
                unreachable!("conv ops are priced through conv_pass_time")
            }
            WorkloadOp::Dense {
                batch,
                in_features,
                out_features,
            } => {
                let flops = 2.0 * (batch * in_features * out_features) as f64;
                let util = if deterministic {
                    c.det_gemm_util as f64
                } else {
                    1.0
                };
                flops / (self.eff_tflops as f64 * 1e12 * util)
            }
            WorkloadOp::BatchNorm { elems } => {
                // Two passes over the data (stats + normalize), 4 B/elem,
                // discounted by the framework's op fusion (BN/activation
                // kernels fuse into the producing convolution).
                let bytes = FUSION_DISCOUNT * 2.0 * 4.0 * elems as f64;
                let t = bytes / (c.mem_bw_gbps as f64 * 1e9);
                if deterministic {
                    t * c.bn_det_penalty as f64
                } else {
                    t
                }
            }
            WorkloadOp::Pool { elems } | WorkloadOp::Activation { elems } => {
                let bytes = FUSION_DISCOUNT * 2.0 * 4.0 * elems as f64;
                bytes / (c.mem_bw_gbps as f64 * 1e9)
            }
        }
    }
}

#[cfg(test)]
// Tests assert exact float values: bit-identical replay is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn geom(k: usize) -> ConvGeometry {
        ConvGeometry::new(16, 32, k, 1, k / 2, 28, 28)
    }

    #[test]
    fn winograd_beats_atomic_for_3x3() {
        let m = CostModel::for_device(&Device::v100());
        let g = geom(3);
        let w = m.conv_pass_time(ConvAlgorithm::WinogradNonfused, ConvPass::Forward, &g, 32);
        let a = m.conv_pass_time(ConvAlgorithm::ImplicitGemmAtomic, ConvPass::Forward, &g, 32);
        assert!(w < a);
    }

    #[test]
    fn fft_advantage_grows_with_filter_size() {
        let m = CostModel::for_device(&Device::v100());
        let g5 = geom(5);
        let g7 = geom(7);
        let r5 = m.conv_pass_time(ConvAlgorithm::FftTiling, ConvPass::Forward, &g5, 32)
            / m.conv_pass_time(
                ConvAlgorithm::ImplicitGemmAtomic,
                ConvPass::Forward,
                &g5,
                32,
            );
        let r7 = m.conv_pass_time(ConvAlgorithm::FftTiling, ConvPass::Forward, &g7, 32)
            / m.conv_pass_time(
                ConvAlgorithm::ImplicitGemmAtomic,
                ConvPass::Forward,
                &g7,
                32,
            );
        assert!(r7 < r5, "fft relative time should drop with k");
    }

    #[test]
    fn deterministic_wgrad_slower_than_atomic() {
        for d in [Device::p100(), Device::v100(), Device::t4()] {
            let m = CostModel::for_device(&d);
            let g = geom(3);
            let det =
                m.conv_pass_time(ConvAlgorithm::ImplicitGemmDet, ConvPass::WeightGrad, &g, 32);
            let nd = m.conv_pass_time(
                ConvAlgorithm::ImplicitGemmAtomic,
                ConvPass::WeightGrad,
                &g,
                32,
            );
            assert!(det > nd, "{}", d.name());
        }
    }

    #[test]
    fn pascal_pays_more_than_turing_for_determinism() {
        let g = geom(3);
        let ratio = |d: Device| {
            let m = CostModel::for_device(&d);
            m.conv_pass_time(ConvAlgorithm::ImplicitGemmDet, ConvPass::WeightGrad, &g, 32)
                / m.conv_pass_time(
                    ConvAlgorithm::ImplicitGemmAtomic,
                    ConvPass::WeightGrad,
                    &g,
                    32,
                )
        };
        assert!(ratio(Device::p100()) > ratio(Device::v100()));
        assert!(ratio(Device::v100()) > ratio(Device::t4()));
    }

    #[test]
    fn spatial_skew_highest_for_early_layers() {
        // Early layer: 16→32 channels at 112×112 (thin channel product,
        // huge spatial extent).
        let early = ConvGeometry::new(16, 32, 3, 1, 1, 112, 112);
        // Late layer: 256→512 channels at 7×7 (ample parallelism: no skew).
        let late = ConvGeometry::new(256, 512, 3, 1, 1, 7, 7);
        assert!(CostModel::spatial_skew(&early) > 5.0);
        assert_eq!(CostModel::spatial_skew(&late), 0.0);
        // Depthwise convolutions and RGB stems carry no skew.
        assert_eq!(
            CostModel::spatial_skew(&ConvGeometry::new(1, 64, 3, 1, 1, 112, 112)),
            0.0
        );
        assert_eq!(
            CostModel::spatial_skew(&ConvGeometry::new(3, 64, 7, 2, 3, 224, 224)),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn pricing_unsupported_algorithm_panics() {
        let m = CostModel::for_device(&Device::v100());
        let g = geom(5);
        m.conv_pass_time(ConvAlgorithm::WinogradNonfused, ConvPass::Forward, &g, 32);
    }

    #[test]
    fn misc_ops_have_positive_time() {
        let m = CostModel::for_device(&Device::t4());
        for op in [
            WorkloadOp::Dense {
                batch: 8,
                in_features: 128,
                out_features: 10,
            },
            WorkloadOp::BatchNorm { elems: 1000 },
            WorkloadOp::Pool { elems: 1000 },
            WorkloadOp::Activation { elems: 1000 },
        ] {
            assert!(m.misc_op_time(&op, false) > 0.0);
            assert!(m.misc_op_time(&op, true) >= m.misc_op_time(&op, false));
        }
    }

    #[test]
    fn tpu_has_no_determinism_penalty() {
        let c = CostModel::arch_costs(Architecture::TpuV2);
        assert_eq!(c.det_gemm_util, 1.0);
        assert_eq!(c.det_wgrad_skew, 0.0);
    }
}
