#!/usr/bin/env python3
"""Fill EXPERIMENTS.md's PLACEHOLDER-RESULTS from repro_stdout.txt."""
import re, sys

stdout = open('repro_stdout.txt').read()

def grab(title):
    """Extract a rendered table starting at `title` until a blank line."""
    idx = stdout.find(title)
    if idx < 0:
        return f"(missing: {title})"
    block = stdout[idx:]
    lines = []
    for line in block.splitlines():
        if not line.strip() and lines:
            break
        lines.append(line)
    return "\n".join(lines)

sections = []
sections.append("## Table 2 — test accuracy per hardware × task × variant\n\n"
  "Paper: stddevs 0.05–0.91 % over 10 replicas of full-scale 200-epoch runs; "
  "mean accuracies 62.0/93.3/73.4/76.6 %. Measured means anchor within a few "
  "points of the paper's (see the comparison table); stddevs are larger at "
  "demo scale as expected.\n\n```\n" + grab("Table 2:") + "\n```\n\n```\n" +
  grab("Table 2 paper-vs-measured") + "\n```\n")
sections.append("## Figure 1 — stability by noise source (V100)\n\n"
  "Paper: both ALGO and IMPL significant; ALGO ≳ IMPL; small CNN worst "
  "(churn ≈ 0.2–0.4 vs ResNet18 ≈ 0.06; IMPL churn for ResNet50/ImageNet "
  "14.68 % vs ALGO 14.89 %).\n\n```\n" + grab("Figure 1:") + "\n```\n")
sections.append("## Figure 2 — batch-norm ablation\n\n"
  "Paper: stddev(acc) 0.86 % without BN → 0.30 % with BN.\n\n```\n" +
  grab("Figure 2 (batch-norm ablation)") + "\n```\n")
sections.append("## Table 3 — CelebA subgroup distribution\n\n"
  "Paper: Male positives 0.8 % of all samples (≈2 % within males), Old "
  "positives 2.5 %; Male 41.9 %, Young 77.9 % of the population.\n\n```\n" +
  grab("Table 3:") + "\n```\n")
sections.append("## Figure 3 / Table 5 — subgroup stability\n\n"
  "Paper: Old accuracy-stddev up to 3.31×, Male FNR-stddev up to 4.60× the "
  "population level; underrepresented groups dominate in every variant.\n\n```\n" +
  grab("Table 5 [ALGO+IMPL]") + "\n\n" + grab("Table 5 [ALGO]") + "\n\n" +
  grab("Table 5 [IMPL]") + "\n```\n")
sections.append("## Figure 4 — per-class vs overall variance (V100)\n\n"
  "Paper: max per-class stddev up to 4× (CIFAR-10) and 23× (CIFAR-100) the "
  "top-line stddev.\n\n```\n" + grab("Figure 4:") + "\n```\n")
sections.append("## Figure 5 — accelerator comparison\n\n"
  "Paper: TPU lowers churn/L2 under ALGO+IMPL (deterministic by design, "
  "IMPL exactly 0); Tensor Cores remain as noisy as CUDA cores; stddev is "
  "less sensitive to removing single sources than churn/L2.\n\n```\n" +
  grab("Figure 5:") + "\n```\n")
sections.append("## Figure 6 — data-order-only noise (TPU)\n\n"
  "Paper: divergence at every batch size including one full-dataset batch "
  "where all gradients are mathematically identical.\n\n```\n" +
  grab("Figure 6:") + "\n```\n")
fig7_head = grab("Figure 7 [Default mode]").splitlines()[:10]
fig7_det = grab("Figure 7 [TF-deterministic mode]").splitlines()[:10]
sections.append("## Figure 7 — top-20 kernels, default vs deterministic\n\n"
  "Paper: deterministic mode concentrates time in a narrower kernel set. "
  "Measured: fewer distinct kernels, no nondeterministic algorithm scheduled, "
  "larger total time (first rows shown; full profile in results/fig7.json).\n\n```\n"
  + "\n".join(fig7_head) + "\n...\n\n" + "\n".join(fig7_det) + "\n...\n```\n")
sections.append("## Figure 8 (left) — overhead across ten networks\n\n"
  "Paper: range 101–211 % (P100) and 101–196 % (T4); VGG-19 185 % on V100; "
  "MobileNet ≈ 101 %.\n\n```\n" + grab("Figure 8 (left)") + "\n```\n")
sections.append("## Figure 8 (right) — overhead vs filter size\n\n"
  "Paper: 284–746 % (P100), 129–241 % (V100), 117–196 % (T4); monotone in k.\n\n```\n"
  + grab("Figure 8 (right)") + "\n```\n\n```\n" +
  grab("Figure 8 (right) paper-vs-measured") + "\n```\n")
sections.append("## Figures 9/10 — Figure 1 on P100 / RTX5000\n\n"
  "Paper: same qualitative picture as V100 across hardware.\n\n```\n" +
  grab("Figure 9:") + "\n\n" + grab("Figure 10:") + "\n```\n")
sections.append("## Extensions (beyond the paper)\n\n"
  "Distributed data parallelism (the paper's §6 future work), the "
  "parallelism→noise ablation (§3.3's CUDA-core hypothesis), the per-source "
  "ALGO decomposition, and an architecture-instability comparison including "
  "LeNet-5 (Pham et al.'s most variance-prone model).\n\n```\n" +
  grab("Extension: IMPL noise vs simulated data-parallel workers") + "\n\n" +
  grab("Extension: IMPL noise vs accumulation-lane count") + "\n\n" +
  grab("Extension: architecture instability") + "\n\n" +
  grab("Extension: per-source decomposition") + "\n```\n")

body = "\n".join(sections)
p = 'EXPERIMENTS.md'
s = open(p).read()
s = s.replace('PLACEHOLDER-RESULTS', body)
open(p, 'w').write(s)
print("EXPERIMENTS.md filled:", len(body), "chars")
