//! Accuracy decompositions: top-line, per-class, and per-subgroup with
//! binary error rates (FPR/FNR) — the dis-aggregated measures of the
//! paper's Figures 3-4 and Table 5.

use serde::{Deserialize, Serialize};

/// Top-line accuracy.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn accuracy<T: PartialEq>(preds: &[T], labels: &[T]) -> f64 {
    assert_eq!(preds.len(), labels.len(), "length mismatch");
    if preds.is_empty() {
        return 0.0;
    }
    preds.iter().zip(labels).filter(|(p, l)| p == l).count() as f64 / preds.len() as f64
}

/// Per-class accuracy: element `c` is the accuracy over samples whose true
/// label is `c` (`None` when the class has no samples).
///
/// # Panics
///
/// Panics if lengths differ or a label is out of range.
pub fn per_class_accuracy(preds: &[u32], labels: &[u32], classes: usize) -> Vec<Option<f64>> {
    assert_eq!(preds.len(), labels.len(), "length mismatch");
    let mut correct = vec![0usize; classes];
    let mut total = vec![0usize; classes];
    for (&p, &l) in preds.iter().zip(labels) {
        let l = l as usize;
        assert!(l < classes, "label {l} out of range");
        total[l] += 1;
        if p == l as u32 {
            correct[l] += 1;
        }
    }
    (0..classes)
        .map(|c| {
            if total[c] == 0 {
                None
            } else {
                Some(correct[c] as f64 / total[c] as f64)
            }
        })
        .collect()
}

/// Binary-classification error rates.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BinaryRates {
    /// Accuracy.
    pub accuracy: f64,
    /// False-positive rate: `FP / (FP + TN)` (0 when no negatives).
    pub fpr: f64,
    /// False-negative rate: `FN / (FN + TP)` (0 when no positives).
    pub fnr: f64,
    /// Samples covered.
    pub count: usize,
}

/// Computes accuracy/FPR/FNR of binary predictions against labels,
/// restricted to the samples where `mask` is true (pass all-true for the
/// overall rates).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn binary_rates(preds: &[u8], labels: &[u8], mask: &[bool]) -> BinaryRates {
    assert_eq!(preds.len(), labels.len(), "length mismatch");
    assert_eq!(preds.len(), mask.len(), "mask length mismatch");
    let (mut tp, mut tn, mut fp, mut fnn) = (0usize, 0usize, 0usize, 0usize);
    for i in 0..preds.len() {
        if !mask[i] {
            continue;
        }
        match (preds[i] != 0, labels[i] != 0) {
            (true, true) => tp += 1,
            (false, false) => tn += 1,
            (true, false) => fp += 1,
            (false, true) => fnn += 1,
        }
    }
    let count = tp + tn + fp + fnn;
    BinaryRates {
        accuracy: if count == 0 {
            0.0
        } else {
            (tp + tn) as f64 / count as f64
        },
        fpr: if fp + tn == 0 {
            0.0
        } else {
            fp as f64 / (fp + tn) as f64
        },
        fnr: if fnn + tp == 0 {
            0.0
        } else {
            fnn as f64 / (fnn + tp) as f64
        },
        count,
    }
}

/// Accuracy over the samples where `mask` is true.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn subgroup_accuracy<T: PartialEq>(preds: &[T], labels: &[T], mask: &[bool]) -> f64 {
    assert_eq!(preds.len(), labels.len(), "length mismatch");
    assert_eq!(preds.len(), mask.len(), "mask length mismatch");
    let mut correct = 0usize;
    let mut total = 0usize;
    for i in 0..preds.len() {
        if mask[i] {
            total += 1;
            if preds[i] == labels[i] {
                correct += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

#[cfg(test)]
// Tests assert exact float values: bit-identical replay is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_reference() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 0]), 2.0 / 3.0);
        assert_eq!(accuracy::<u32>(&[], &[]), 0.0);
    }

    #[test]
    fn per_class_decomposition() {
        let preds = [0u32, 0, 1, 1, 2];
        let labels = [0u32, 1, 1, 1, 1];
        let pca = per_class_accuracy(&preds, &labels, 3);
        assert_eq!(pca[0], Some(1.0));
        assert_eq!(pca[1], Some(0.5));
        assert_eq!(pca[2], None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn per_class_rejects_bad_label() {
        per_class_accuracy(&[0], &[5], 3);
    }

    #[test]
    fn binary_rates_reference() {
        // preds:  1 1 0 0 1 0
        // labels: 1 0 0 1 1 0
        let preds = [1u8, 1, 0, 0, 1, 0];
        let labels = [1u8, 0, 0, 1, 1, 0];
        let mask = [true; 6];
        let r = binary_rates(&preds, &labels, &mask);
        assert_eq!(r.count, 6);
        assert!((r.accuracy - 4.0 / 6.0).abs() < 1e-12);
        // FP=1, TN=2 → FPR 1/3. FN=1, TP=2 → FNR 1/3.
        assert!((r.fpr - 1.0 / 3.0).abs() < 1e-12);
        assert!((r.fnr - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn binary_rates_respect_mask() {
        let preds = [1u8, 0];
        let labels = [1u8, 1];
        let r = binary_rates(&preds, &labels, &[true, false]);
        assert_eq!(r.count, 1);
        assert_eq!(r.accuracy, 1.0);
        assert_eq!(r.fnr, 0.0);
    }

    #[test]
    fn binary_rates_degenerate_groups() {
        // No positives → FNR defined as 0; no negatives → FPR 0.
        let r = binary_rates(&[0u8, 0], &[0u8, 0], &[true, true]);
        assert_eq!(r.fnr, 0.0);
        assert_eq!(r.fpr, 0.0);
        let empty = binary_rates(&[1u8], &[1u8], &[false]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.accuracy, 0.0);
    }

    #[test]
    fn subgroup_accuracy_reference() {
        let preds = [1u32, 2, 3, 4];
        let labels = [1u32, 0, 3, 0];
        assert_eq!(
            subgroup_accuracy(&preds, &labels, &[true, true, false, false]),
            0.5
        );
        assert_eq!(subgroup_accuracy(&preds, &labels, &[false; 4]), 0.0);
    }
}
