//! Property-based tests for the deterministic RNG substrate.

use detrand::{permutation, Philox, SeedPolicy, SplitMix64, StreamId};
use proptest::prelude::*;

proptest! {
    #[test]
    fn philox_replay_is_exact(seed in any::<u64>(), ctr in any::<u64>(), n in 1usize..64) {
        let g = Philox::from_seed(seed);
        let mut a = g.rng_at(ctr as u128);
        let mut b = g.rng_at(ctr as u128);
        for _ in 0..n {
            prop_assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn philox_f32_in_unit_interval(seed in any::<u64>()) {
        let mut r = Philox::from_seed(seed).rng_at(0);
        for _ in 0..64 {
            let x = r.next_f32();
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_bound_holds(seed in any::<u64>(), bound in 1u32..1_000_000) {
        let mut r = Philox::from_seed(seed).rng_at(0);
        for _ in 0..32 {
            prop_assert!(r.next_below(bound) < bound);
        }
    }

    #[test]
    fn derived_keys_injective_over_salts(seed in any::<u64>(), s1 in any::<u64>(), s2 in any::<u64>()) {
        prop_assume!(s1 != s2);
        let g = Philox::from_seed(seed);
        prop_assert_ne!(g.derive(s1).key(), g.derive(s2).key());
    }

    #[test]
    fn permutation_is_bijective(seed in any::<u64>(), n in 0usize..256) {
        let mut rng = Philox::from_seed(seed).stream(StreamId::SHUFFLE);
        let p = permutation(&mut rng, n);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn seed_policy_fixed_constant(base in any::<u64>(), r in any::<u32>()) {
        prop_assert_eq!(SeedPolicy::Fixed.seed_for(base, r), base);
    }

    #[test]
    fn seed_policy_per_replica_distinct(base in any::<u64>(), r1 in 0u32..1024, r2 in 0u32..1024) {
        prop_assume!(r1 != r2);
        prop_assert_ne!(
            SeedPolicy::PerReplica.seed_for(base, r1),
            SeedPolicy::PerReplica.seed_for(base, r2)
        );
    }

    #[test]
    fn splitmix_deterministic(seed in any::<u64>()) {
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
