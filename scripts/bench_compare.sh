#!/usr/bin/env bash
# Compare a fresh `cargo bench -p ns-bench --bench hotpath` run against the
# committed reference numbers in BENCH_2.json.
#
# Usage:
#   scripts/bench_compare.sh            # run benches, compare, warn on drift
#   scripts/bench_compare.sh --update   # run benches, rewrite post_pr_ns/speedup
#   scripts/bench_compare.sh --from FILE  # compare a saved bench log instead
#
# The gate is WARN-ONLY: wall-clock on shared machines is far too noisy to
# fail CI on, and the determinism guarantees are covered by the test suite,
# not by timing. Exit status is always 0 unless the bench run itself fails
# or the log parses to zero benches.
set -euo pipefail

cd "$(dirname "$0")/.."

REF=BENCH_2.json
TOLERANCE=${BENCH_TOLERANCE:-1.75} # warn when slower than ref by this factor
# The fault-tolerance layer (chaos hooks, checkpoint plumbing) must be
# zero-cost when disarmed: `begin_step`/`take_fault` are a null check and
# FitOptions::default() wires no sink. The train_step hot path therefore
# gets a tighter drift tolerance than the general wall-clock noise budget.
HOT_TOLERANCE=${BENCH_HOT_TOLERANCE:-1.40}
UPDATE=0
FROM=""

while [[ $# -gt 0 ]]; do
    case "$1" in
    --update) UPDATE=1 ;;
    --from)
        FROM="$2"
        shift
        ;;
    *)
        echo "unknown argument: $1" >&2
        exit 2
        ;;
    esac
    shift
done

LOG=$(mktemp)
trap 'rm -f "$LOG"' EXIT

if [[ -n "$FROM" ]]; then
    cp "$FROM" "$LOG"
else
    cargo bench -p ns-bench --bench hotpath 2>&1 | tee "$LOG"
fi

python3 - "$REF" "$LOG" "$UPDATE" "$TOLERANCE" "$HOT_TOLERANCE" <<'PY'
import json, re, sys

ref_path, log_path, update, tol = sys.argv[1], sys.argv[2], sys.argv[3] == "1", float(sys.argv[4])
hot_tol = float(sys.argv[5])
# Benches covered by the zero-cost-when-disabled guarantee of the
# supervision/checkpoint layer: held to hot_tol instead of tol.
HOT_PREFIXES = ("train_step/",)
ref = json.load(open(ref_path))

# Bench stub output: "group/label: 12345.6 ns/iter (...)"
pat = re.compile(r"^([\w/]+(?:/[\w]+)*): ([0-9.]+) ns/iter")
fresh = {}
for line in open(log_path):
    m = pat.match(line.strip())
    if m:
        fresh[m.group(1)] = float(m.group(2))

if not fresh:
    print("bench_compare: no bench lines parsed from log", file=sys.stderr)
    sys.exit(1)

warned = 0
for name, entry in ref["results"].items():
    if name not in fresh:
        print(f"bench_compare: WARN {name}: missing from fresh run")
        warned += 1
        continue
    now, then = fresh[name], entry["post_pr_ns"]
    ratio = now / then if then else float("inf")
    limit = hot_tol if name.startswith(HOT_PREFIXES) else tol
    status = "ok"
    if ratio > limit:
        status = f"WARN slower than reference x{ratio:.2f} (tolerance x{limit})"
        warned += 1
    print(f"bench_compare: {name}: ref {then:.1f} ns, now {now:.1f} ns [{status}]")

for name in sorted(set(fresh) - set(ref["results"])):
    print(f"bench_compare: note: new bench {name} not in {ref_path}")

if update:
    for name, entry in ref["results"].items():
        if name in fresh:
            entry["post_pr_ns"] = fresh[name]
            pre = entry.get("pre_pr_reference_ns")
            if pre:
                entry["speedup"] = round(pre / fresh[name], 2)
    with open(ref_path, "w") as f:
        json.dump(ref, f, indent=2)
        f.write("\n")
    print(f"bench_compare: updated {ref_path}")

# Warn-only: drift never fails the build.
print(f"bench_compare: done ({warned} warning(s))")
PY
