//! Tensor shapes: up to four dimensions (`[N, C, H, W]` convention).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum supported rank.
pub const MAX_RANK: usize = 4;

/// A tensor shape of rank 0..=4.
///
/// # Example
///
/// ```
/// use nstensor::Shape;
/// let s = Shape::of(&[2, 3, 4, 4]);
/// assert_eq!(s.rank(), 4);
/// assert_eq!(s.len(), 96);
/// assert_eq!(s.dim(1), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: usize,
}

impl Shape {
    /// Creates a shape from a dimension list.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_RANK`] dimensions are given.
    pub fn of(dims: &[usize]) -> Self {
        assert!(
            dims.len() <= MAX_RANK,
            "rank {} exceeds MAX_RANK {MAX_RANK}",
            dims.len()
        );
        let mut d = [1usize; MAX_RANK];
        d[..dims.len()].copy_from_slice(dims);
        Self {
            dims: d,
            rank: dims.len(),
        }
    }

    /// A scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Self::of(&[])
    }

    /// The rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The size of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank`.
    pub fn dim(&self, i: usize) -> usize {
        assert!(i < self.rank, "dim {i} out of range for rank {}", self.rank);
        self.dims[i]
    }

    /// The dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank]
    }

    /// The total number of elements.
    pub fn len(&self) -> usize {
        self.dims[..self.rank].iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The flat offset of a 2-D index (row-major).
    #[inline]
    pub fn offset2(&self, i: usize, j: usize) -> usize {
        debug_assert_eq!(self.rank, 2);
        i * self.dims[1] + j
    }

    /// The flat offset of a 4-D index (row-major `[N, C, H, W]`).
    #[inline]
    pub fn offset4(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert_eq!(self.rank, 4);
        ((n * self.dims[1] + c) * self.dims[2] + h) * self.dims[3] + w
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<(usize, usize)> for Shape {
    fn from((a, b): (usize, usize)) -> Self {
        Shape::of(&[a, b])
    }
}

impl From<(usize, usize, usize, usize)> for Shape {
    fn from((a, b, c, d): (usize, usize, usize, usize)) -> Self {
        Shape::of(&[a, b, c, d])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn len_is_product() {
        assert_eq!(Shape::of(&[3, 4, 5]).len(), 60);
        assert_eq!(Shape::of(&[7]).len(), 7);
    }

    #[test]
    fn zero_dim_is_empty() {
        assert!(Shape::of(&[3, 0, 5]).is_empty());
    }

    #[test]
    fn offsets_are_row_major() {
        let s2 = Shape::of(&[3, 4]);
        assert_eq!(s2.offset2(0, 0), 0);
        assert_eq!(s2.offset2(1, 0), 4);
        assert_eq!(s2.offset2(2, 3), 11);
        let s4 = Shape::of(&[2, 3, 4, 5]);
        assert_eq!(s4.offset4(0, 0, 0, 1), 1);
        assert_eq!(s4.offset4(1, 0, 0, 0), 60);
        assert_eq!(s4.offset4(1, 2, 3, 4), 119);
    }

    #[test]
    fn display_lists_dims() {
        assert_eq!(Shape::of(&[2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_RANK")]
    fn rank_five_panics() {
        Shape::of(&[1, 2, 3, 4, 5]);
    }

    #[test]
    fn tuple_conversions() {
        assert_eq!(Shape::from((2, 3)), Shape::of(&[2, 3]));
        assert_eq!(Shape::from((1, 2, 3, 4)), Shape::of(&[1, 2, 3, 4]));
    }
}
