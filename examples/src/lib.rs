//! Shared helpers for the example binaries.

#![warn(missing_docs)]

use noisescope::prelude::*;
use nsdata::GaussianSpec;

/// A small task every example can train in a few seconds.
pub fn demo_task() -> TaskSpec {
    let mut t = TaskSpec::small_cnn_cifar10();
    t.data = DataSource::Gaussian(GaussianSpec {
        train_per_class: 32,
        test_per_class: 24,
        ..GaussianSpec::cifar10_sim()
    });
    t.train.epochs = 8;
    t
}

/// Demo settings: three replicas so examples finish quickly.
pub fn demo_settings() -> ExperimentSettings {
    ExperimentSettings {
        replicas: 3,
        ..ExperimentSettings::default()
    }
}
