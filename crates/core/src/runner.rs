//! Replica fleets: train N independent models under a noise variant and
//! collect everything the stability metrics need.

use crate::settings::ExperimentSettings;
use crate::task::{DataSource, TaskSpec};
use crate::variant::NoiseVariant;
use hwsim::{Device, ExecutionContext, FaultPlan};
use nnet::checkpoint::Checkpoint;
use nnet::trainer::{
    predict_binary, predict_classes, Dataset, FitOptions, Targets, TrainError, Trainer,
};
use nsdata::{CelebaData, ShiftFlip, SplitDataset};
use serde::{Deserialize, Serialize};

/// A task with its dataset materialized (generation happens once; the
/// dataset is a fixed artifact shared by every replica, like CIFAR on
/// disk).
#[derive(Debug, Clone)]
pub struct PreparedTask {
    /// The task specification.
    pub spec: TaskSpec,
    /// The materialized data.
    pub data: PreparedData,
}

/// The materialized dataset of a prepared task.
#[derive(Debug, Clone)]
pub enum PreparedData {
    /// Gaussian-cluster classification splits.
    Gaussian(Box<SplitDataset>),
    /// The CelebA stand-in (with subgroup metadata).
    Celeba(Box<CelebaData>),
}

impl PreparedTask {
    /// Generates the task's dataset.
    pub fn prepare(spec: &TaskSpec) -> Self {
        let data = match spec.data {
            DataSource::Gaussian(g) => PreparedData::Gaussian(Box::new(g.generate())),
            DataSource::Celeba(c) => PreparedData::Celeba(Box::new(c.generate())),
        };
        Self {
            spec: spec.clone(),
            data,
        }
    }

    /// The training split.
    pub fn train_set(&self) -> &Dataset {
        match &self.data {
            PreparedData::Gaussian(s) => &s.train,
            PreparedData::Celeba(c) => &c.train,
        }
    }

    /// The test split.
    pub fn test_set(&self) -> &Dataset {
        match &self.data {
            PreparedData::Gaussian(s) => &s.test,
            PreparedData::Celeba(c) => &c.test,
        }
    }

    /// Number of classes (1 for binary attribute tasks).
    pub fn classes(&self) -> usize {
        match &self.data {
            PreparedData::Gaussian(s) => s.classes,
            PreparedData::Celeba(_) => 1,
        }
    }
}

/// Test-set predictions of one replica.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Preds {
    /// Class predictions.
    Classes(Vec<u32>),
    /// Flat binary attribute predictions.
    Binary(Vec<u8>),
}

/// Everything a stability metric needs from one trained replica.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicaResult {
    /// Replica index.
    pub replica: u32,
    /// Test accuracy.
    pub accuracy: f64,
    /// Test predictions.
    pub preds: Preds,
    /// Flattened final weights.
    pub weights: Vec<f32>,
    /// Final-epoch mean training loss.
    pub final_train_loss: f32,
}

/// How one replica of a fleet ended up, as recorded by the supervisor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplicaStatus {
    /// Trained successfully on the first attempt.
    Ok,
    /// Failed at least once but a retry succeeded; `attempts` counts every
    /// execution including the successful one. Because retries re-derive
    /// all seeds from the replica index, a retried replica's result is
    /// bit-identical to a never-faulted run.
    Retried {
        /// Total executions including the successful one (≥ 2).
        attempts: u32,
    },
    /// Every attempt within the retry budget failed; the replica has no
    /// result and downstream reports flag the cell as incomplete.
    Failed {
        /// Human-readable reason from the last attempt.
        reason: String,
    },
    /// Fleet mode only: every attempt was killed by the supervisor's
    /// heartbeat watchdog or wall-clock deadline. Like `Failed`, the
    /// replica has no result. (A worker that times out and then succeeds
    /// on a retry is recorded as [`ReplicaStatus::Retried`].)
    TimedOut {
        /// Total attempts, all killed (= retry budget + 1).
        attempts: u32,
    },
    /// Fleet mode only: the worker process died abnormally (panic exit
    /// code, signal such as an abort) on every attempt. Like `Failed`,
    /// the replica has no result.
    Crashed {
        /// Exit classification of the last attempt (e.g. `"signal 6"`,
        /// `"exit code 101"`).
        reason: String,
    },
}

impl ReplicaStatus {
    /// Whether this replica produced no result.
    pub fn is_failed(&self) -> bool {
        matches!(
            self,
            ReplicaStatus::Failed { .. }
                | ReplicaStatus::TimedOut { .. }
                | ReplicaStatus::Crashed { .. }
        )
    }
}

/// All replicas of one (task, device, variant) cell.
///
/// `results` holds the *successful* replicas in replica order; `statuses`
/// always has one entry per requested replica index, so a degraded fleet
/// is visible (`results.len() < statuses.len()`) without being fatal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariantRuns {
    /// The variant trained under.
    pub variant: NoiseVariant,
    /// Successful replica outcomes, in replica order.
    pub results: Vec<ReplicaResult>,
    /// Per-replica supervision outcome, indexed by replica.
    pub statuses: Vec<ReplicaStatus>,
}

/// A [`VariantRuns`] accessor was asked for one kind of predictions but a
/// replica holds the other (e.g. class predictions requested from a binary
/// attribute task).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredsKindError {
    /// What the accessor expected.
    pub expected: &'static str,
    /// What the replica actually holds.
    pub found: &'static str,
    /// The offending replica index.
    pub replica: u32,
}

impl std::fmt::Display for PredsKindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "expected {} predictions but replica {} holds {} predictions",
            self.expected, self.replica, self.found
        )
    }
}

impl std::error::Error for PredsKindError {}

impl Preds {
    fn kind(&self) -> &'static str {
        match self {
            Preds::Classes(_) => "class",
            Preds::Binary(_) => "binary",
        }
    }
}

impl VariantRuns {
    /// Whether every requested replica produced a result.
    pub fn is_complete(&self) -> bool {
        self.statuses.iter().all(|s| !s.is_failed())
    }

    /// Indices of replicas that exhausted their retry budget.
    pub fn failed_replicas(&self) -> Vec<u32> {
        self.statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_failed())
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Number of replicas that needed at least one retry.
    pub fn retried_replicas(&self) -> usize {
        self.statuses
            .iter()
            .filter(|s| matches!(s, ReplicaStatus::Retried { .. }))
            .count()
    }

    /// Replica accuracies.
    pub fn accuracies(&self) -> Vec<f64> {
        self.results.iter().map(|r| r.accuracy).collect()
    }

    /// Replica weight vectors.
    pub fn weight_sets(&self) -> Vec<Vec<f32>> {
        self.results.iter().map(|r| r.weights.clone()).collect()
    }

    /// Replica class predictions.
    ///
    /// # Errors
    ///
    /// Returns [`PredsKindError`] if any replica holds binary predictions.
    pub fn class_pred_sets(&self) -> Result<Vec<Vec<u32>>, PredsKindError> {
        self.results
            .iter()
            .map(|r| match &r.preds {
                Preds::Classes(p) => Ok(p.clone()),
                other => Err(PredsKindError {
                    expected: "class",
                    found: other.kind(),
                    replica: r.replica,
                }),
            })
            .collect()
    }

    /// Replica binary predictions.
    ///
    /// # Errors
    ///
    /// Returns [`PredsKindError`] if any replica holds class predictions.
    pub fn binary_pred_sets(&self) -> Result<Vec<Vec<u8>>, PredsKindError> {
        self.results
            .iter()
            .map(|r| match &r.preds {
                Preds::Binary(p) => Ok(p.clone()),
                other => Err(PredsKindError {
                    expected: "binary",
                    found: other.kind(),
                    replica: r.replica,
                }),
            })
            .collect()
    }
}

/// Knobs for one supervised replica execution, beyond the cell identity.
#[derive(Default)]
pub struct ReplicaOptions<'a> {
    /// Which retry this is (0 = first execution); selects the chaos fault
    /// schedule for transient-fault configs.
    pub attempt: u32,
    /// Resume mid-training from this checkpoint.
    pub resume: Option<&'a Checkpoint>,
    /// Emit a checkpoint every N completed epochs (0 disables).
    pub checkpoint_every_epochs: u32,
    /// Receives emitted checkpoints (typically: persist to disk).
    pub sink: Option<&'a mut dyn FnMut(&Checkpoint)>,
    /// Invoke `progress` every N completed optimizer steps (0 disables).
    /// Pure observation — see [`nnet::trainer::FitOptions`].
    pub progress_every_steps: u32,
    /// Receives the global step count at each progress interval (fleet
    /// workers emit liveness heartbeats from here).
    pub progress: Option<&'a mut dyn FnMut(u64)>,
}

impl std::fmt::Debug for ReplicaOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaOptions")
            .field("attempt", &self.attempt)
            .field("resume", &self.resume.map(|c| c.epochs_done))
            .field("checkpoint_every_epochs", &self.checkpoint_every_epochs)
            .field("sink", &self.sink.is_some())
            .field("progress_every_steps", &self.progress_every_steps)
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

/// The chaos fault schedule for one `(replica, attempt)` execution, over
/// the task's actual training horizon in optimizer steps.
fn fault_plan_for(
    prepared: &PreparedTask,
    settings: &ExperimentSettings,
    replica: u32,
    attempt: u32,
) -> FaultPlan {
    match &settings.chaos {
        Some(cfg) => {
            let train_cfg = prepared.spec.train_config(settings);
            let steps_per_epoch = prepared
                .train_set()
                .len()
                .div_ceil(train_cfg.batch_size)
                .max(1) as u64;
            FaultPlan::build(
                cfg,
                replica,
                attempt,
                train_cfg.epochs as u64 * steps_per_epoch,
            )
        }
        None => FaultPlan::none(),
    }
}

/// Trains one replica of a task on a device under a variant.
///
/// Every seed (algorithmic root, scheduler entropy, chaos schedule) is
/// derived from the replica index, so a replica is a pure function of its
/// arguments: re-running it — whether as a supervision retry or a
/// checkpoint resume — reproduces the result bit-for-bit.
///
/// # Errors
///
/// Returns the [`TrainError`] of a diverged, faulted or empty training
/// run. Injected kernel panics are *not* caught here; the supervisor in
/// [`run_variant`] isolates those.
pub fn run_replica(
    prepared: &PreparedTask,
    device: &Device,
    variant: NoiseVariant,
    settings: &ExperimentSettings,
    replica: u32,
) -> Result<ReplicaResult, TrainError> {
    run_replica_with(
        prepared,
        device,
        variant,
        settings,
        replica,
        ReplicaOptions::default(),
    )
}

/// [`run_replica`] with supervision knobs: retry attempt selection and
/// checkpoint/resume wiring.
///
/// # Errors
///
/// As [`run_replica`].
pub fn run_replica_with(
    prepared: &PreparedTask,
    device: &Device,
    variant: NoiseVariant,
    settings: &ExperimentSettings,
    replica: u32,
    opts: ReplicaOptions<'_>,
) -> Result<ReplicaResult, TrainError> {
    let spec = &prepared.spec;
    let algo = variant.seed_policy().root_for(settings.base_seed, replica);
    let mut exec = ExecutionContext::builder(*device)
        .mode(variant.exec_mode())
        .entropy(settings.entropy_for(replica))
        .amp_ulps(settings.amp_ulps)
        .threads(settings.exec_threads)
        .chaos(fault_plan_for(prepared, settings, replica, opts.attempt))
        .build();
    let mut net = spec.build_model(&algo);
    let trainer = Trainer::new(spec.train_config(settings));
    let augment = ShiftFlip::standard();
    let report = trainer.fit_with(
        &mut net,
        prepared.train_set(),
        &mut exec,
        &algo,
        if spec.augment { Some(&augment) } else { None },
        FitOptions {
            resume: opts.resume,
            checkpoint_every_epochs: opts.checkpoint_every_epochs,
            sink: opts.sink,
            progress_every_steps: opts.progress_every_steps,
            progress: opts.progress,
        },
    )?;

    let test = prepared.test_set();
    let (preds, accuracy) = match &test.targets {
        Targets::Classes(labels) => {
            let p = predict_classes(&mut net, test, &mut exec, &algo, 64);
            let acc = nsmetrics::accuracy(&p, labels);
            (Preds::Classes(p), acc)
        }
        Targets::Binary(t) => {
            let p = predict_binary(&mut net, test, &mut exec, &algo, 64);
            let labels: Vec<u8> = t.as_slice().iter().map(|&v| (v > 0.5) as u8).collect();
            let acc = nsmetrics::accuracy(&p, &labels);
            (Preds::Binary(p), acc)
        }
    };

    Ok(ReplicaResult {
        replica,
        accuracy,
        preds,
        weights: net.flat_weights(),
        // `fit` guards against empty runs (`TrainError::NoSteps`), so a
        // successful report always has a final epoch loss — no NaN
        // sentinel needed.
        final_train_loss: *report
            .epoch_losses
            .last()
            .expect("successful fit has at least one epoch"),
    })
}

/// Renders a caught panic payload for a `ReplicaStatus::Failed` reason.
pub(crate) fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Runs one replica under supervision: panics are isolated with
/// `catch_unwind`, and failed attempts (structured errors *or* panics) are
/// retried up to `settings.retry_budget` extra times. Deterministic
/// re-derivation of all seeds makes a successful retry bit-identical to a
/// never-faulted run.
fn supervise_replica(
    prepared: &PreparedTask,
    device: &Device,
    variant: NoiseVariant,
    settings: &ExperimentSettings,
    replica: u32,
) -> (Option<ReplicaResult>, ReplicaStatus) {
    let mut last_reason = String::new();
    for attempt in 0..=settings.retry_budget {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_replica_with(
                prepared,
                device,
                variant,
                settings,
                replica,
                ReplicaOptions {
                    attempt,
                    ..ReplicaOptions::default()
                },
            )
        }));
        match outcome {
            Ok(Ok(result)) => {
                let status = if attempt == 0 {
                    ReplicaStatus::Ok
                } else {
                    ReplicaStatus::Retried {
                        attempts: attempt + 1,
                    }
                };
                return (Some(result), status);
            }
            Ok(Err(err)) => last_reason = err.to_string(),
            Err(payload) => last_reason = panic_reason(payload),
        }
    }
    let attempts = settings.retry_budget + 1;
    (
        None,
        ReplicaStatus::Failed {
            reason: format!("{attempts} attempts exhausted; last: {last_reason}"),
        },
    )
}

/// Trains the whole replica fleet for a variant, parallelized over the
/// host's cores (replicas are embarrassingly parallel).
///
/// Each replica runs under supervision: a panic or structured training
/// failure costs that replica a retry (up to `settings.retry_budget`),
/// never the fleet. Replicas whose budget is exhausted are recorded as
/// [`ReplicaStatus::Failed`] in [`VariantRuns::statuses`] and simply
/// absent from `results` — partial fleets degrade into flagged reports
/// instead of aborting the experiment.
///
/// # Panics
///
/// Panics up front (with the rendered
/// [`crate::settings::SettingsError`]) if the settings or task fail
/// [`ExperimentSettings::validate_for`] — the one entry point whose
/// signature predates typed validation. The fallible entry points
/// (`run_variant_resumable`, fleet dispatch, `repro` parsing) surface
/// the same error as a `Result` instead.
pub fn run_variant(
    prepared: &PreparedTask,
    device: &Device,
    variant: NoiseVariant,
    settings: &ExperimentSettings,
) -> VariantRuns {
    if let Err(e) = settings.validate_for(&prepared.spec) {
        panic!("invalid experiment configuration: {e}");
    }
    let n = settings.replicas;
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n as usize)
        .max(1);
    type Supervised = (Option<ReplicaResult>, ReplicaStatus);
    let mut harvested: Vec<Option<Supervised>> = (0..n).map(|_| None).collect();
    if workers <= 1 {
        for r in 0..n {
            harvested[r as usize] = Some(supervise_replica(prepared, device, variant, settings, r));
        }
    } else {
        // Workers pull replica indices from a shared counter and return
        // their (index, result) pairs through the join handle; the harvest
        // scatters by index, so fleet results are in replica order no
        // matter which worker trained what. Replica *contents* never depend
        // on scheduling anyway — each replica derives its seeds and entropy
        // from its index alone.
        let next = std::sync::atomic::AtomicU32::new(0);
        let collected = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(u32, Supervised)> = Vec::new();
                        loop {
                            let r = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if r >= n {
                                return local;
                            }
                            local.push((
                                r,
                                supervise_replica(prepared, device, variant, settings, r),
                            ));
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("supervisor thread panicked"))
                .collect::<Vec<_>>()
        });
        for (r, out) in collected {
            harvested[r as usize] = Some(out);
        }
    }
    let mut results = Vec::with_capacity(n as usize);
    let mut statuses = Vec::with_capacity(n as usize);
    for cell in harvested {
        let (result, status) = cell.expect("replica not supervised");
        results.extend(result);
        statuses.push(status);
    }
    VariantRuns {
        variant,
        results,
        statuses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskSpec;
    use nsdata::GaussianSpec;

    /// A deliberately tiny task for unit tests.
    fn tiny_task() -> TaskSpec {
        let mut t = TaskSpec::small_cnn_cifar10();
        t.data = crate::task::DataSource::Gaussian(GaussianSpec {
            classes: 4,
            train_per_class: 12,
            test_per_class: 8,
            ..GaussianSpec::cifar10_sim()
        });
        t.train.epochs = 2;
        t.augment = false;
        t
    }

    fn tiny_settings() -> ExperimentSettings {
        ExperimentSettings {
            replicas: 2,
            ..ExperimentSettings::default()
        }
    }

    #[test]
    fn replica_produces_complete_result() {
        let prepared = PreparedTask::prepare(&tiny_task());
        let r = run_replica(
            &prepared,
            &Device::cpu(),
            NoiseVariant::Control,
            &tiny_settings(),
            0,
        )
        .expect("replica trains");
        assert_eq!(r.preds, r.preds);
        assert!(!r.weights.is_empty());
        assert!((0.0..=1.0).contains(&r.accuracy));
        assert!(r.final_train_loss.is_finite());
    }

    #[test]
    fn control_variant_is_bitwise_reproducible() {
        let prepared = PreparedTask::prepare(&tiny_task());
        let settings = tiny_settings();
        let runs = run_variant(&prepared, &Device::v100(), NoiseVariant::Control, &settings);
        assert_eq!(runs.results.len(), 2);
        assert_eq!(runs.results[0].weights, runs.results[1].weights);
        assert_eq!(runs.results[0].preds, runs.results[1].preds);
        assert!(runs.is_complete());
        assert_eq!(runs.statuses, vec![ReplicaStatus::Ok; 2]);
    }

    #[test]
    fn chaos_faults_are_retried_to_a_bit_identical_fleet() {
        let prepared = PreparedTask::prepare(&tiny_task());
        let clean = tiny_settings();
        let chaotic = ExperimentSettings {
            chaos: Some(hwsim::ChaosConfig::standard(17)),
            ..clean
        };
        let baseline = run_variant(&prepared, &Device::v100(), NoiseVariant::Impl, &clean);
        let faulted = run_variant(&prepared, &Device::v100(), NoiseVariant::Impl, &chaotic);
        assert!(faulted.is_complete(), "transient faults must be recovered");
        assert!(
            faulted.retried_replicas() > 0,
            "standard chaos must actually fault at least one replica: {:?}",
            faulted.statuses
        );
        for (a, b) in baseline.results.iter().zip(&faulted.results) {
            assert_eq!(
                a.weights, b.weights,
                "retried replica {} must be bit-identical to the fault-free run",
                a.replica
            );
            assert_eq!(a.preds, b.preds);
        }
    }

    #[test]
    fn exhausted_retry_budget_degrades_not_panics() {
        let prepared = PreparedTask::prepare(&tiny_task());
        let settings = ExperimentSettings {
            retry_budget: 1,
            // Persistent faults: every attempt of every replica fails.
            chaos: Some(hwsim::ChaosConfig {
                persistent: true,
                ..hwsim::ChaosConfig::standard(3)
            }),
            ..tiny_settings()
        };
        let runs = run_variant(&prepared, &Device::v100(), NoiseVariant::Impl, &settings);
        assert!(!runs.is_complete());
        assert_eq!(runs.failed_replicas(), vec![0, 1]);
        assert!(runs.results.is_empty());
        for s in &runs.statuses {
            match s {
                ReplicaStatus::Failed { reason } => {
                    assert!(reason.contains("2 attempts exhausted"), "{reason}");
                }
                other => panic!("expected Failed, got {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid experiment configuration")]
    fn run_variant_rejects_invalid_settings_up_front() {
        let prepared = PreparedTask::prepare(&tiny_task());
        let settings = ExperimentSettings {
            replicas: 0,
            ..tiny_settings()
        };
        run_variant(&prepared, &Device::cpu(), NoiseVariant::Control, &settings);
    }

    #[test]
    fn fleet_only_statuses_count_as_failed() {
        assert!(ReplicaStatus::TimedOut { attempts: 3 }.is_failed());
        assert!(ReplicaStatus::Crashed {
            reason: "signal 6".into()
        }
        .is_failed());
        assert!(!ReplicaStatus::Retried { attempts: 2 }.is_failed());
    }

    #[test]
    fn algo_variant_diverges() {
        let prepared = PreparedTask::prepare(&tiny_task());
        let settings = tiny_settings();
        let runs = run_variant(&prepared, &Device::v100(), NoiseVariant::Algo, &settings);
        assert_ne!(runs.results[0].weights, runs.results[1].weights);
    }

    #[test]
    fn impl_variant_diverges_on_gpu_but_not_tpu() {
        let prepared = PreparedTask::prepare(&tiny_task());
        let settings = tiny_settings();
        let gpu = run_variant(&prepared, &Device::v100(), NoiseVariant::Impl, &settings);
        assert_ne!(
            gpu.results[0].weights, gpu.results[1].weights,
            "GPU IMPL runs must diverge"
        );
        let tpu = run_variant(&prepared, &Device::tpu_v2(), NoiseVariant::Impl, &settings);
        assert_eq!(
            tpu.results[0].weights, tpu.results[1].weights,
            "TPU is deterministic by design"
        );
    }
}
