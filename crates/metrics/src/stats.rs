//! Basic statistics used by the stability reports.
//!
//! All reductions route through [`nstensor::reduce`]'s ordered helpers so
//! their accumulation order is fixed and centrally audited (detlint DL004).

use nstensor::reduce::sum_ordered_f64;

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    sum_ordered_f64(xs.iter().copied()) / xs.len() as f64
}

/// Sample standard deviation (Bessel-corrected; 0 for fewer than two
/// values) — the paper's `stddev` across independently trained replicas.
///
/// # Example
///
/// ```
/// let accs = [0.62, 0.63, 0.61, 0.62];
/// assert!(nsmetrics::stddev(&accs) < 0.01);
/// ```
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (sum_ordered_f64(xs.iter().map(|&x| (x - m) * (x - m))) / (xs.len() - 1) as f64).sqrt()
}

/// `value / baseline` with the paper's Table-5 convention: 0 baselines map
/// to 0 (reported as "—" rather than ∞).
pub fn relative_scale(value: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        value / baseline
    }
}

#[cfg(test)]
// Tests assert exact float values: bit-identical replay is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn mean_reference() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0]), 2.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn stddev_reference() {
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        // Sample stddev of {2, 4} = √2.
        assert!((stddev(&[2.0, 4.0]) - 2f64.sqrt()).abs() < 1e-12);
        // Constant data has zero deviation.
        assert_eq!(stddev(&[3.0; 10]), 0.0);
    }

    #[test]
    fn relative_scale_handles_zero_baseline() {
        assert_eq!(relative_scale(1.0, 0.0), 0.0);
        assert!((relative_scale(3.0, 2.0) - 1.5).abs() < 1e-12);
    }
}
