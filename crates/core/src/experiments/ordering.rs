//! Figure 6: data-order-only nondeterminism vs batch size, on the TPU.
//!
//! Every algorithmic factor (initialization, augmentation — disabled —,
//! dropout — none) is pinned, execution is the TPU's deterministic
//! fixed-order mode, and the *only* thing that varies between replicas is
//! the shuffle order of the training data. Mathematically, at full batch
//! the gradient is the same set of per-sample terms every time — yet
//! replicas still diverge, because a different visit order changes the
//! floating-point accumulation order of the gradient reductions. This is
//! the paper's "latent implementation noise" result.

use crate::report::render_table;
use crate::runner::PreparedTask;
use crate::settings::ExperimentSettings;
use crate::task::TaskSpec;
use hwsim::{Device, ExecutionContext, ExecutionMode};
use nnet::trainer::{predict_classes, Targets, Trainer};
use nsmetrics::{pairwise_mean_churn, pairwise_mean_l2};
use serde::{Deserialize, Serialize};

/// One Figure-6 data point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OrderingPoint {
    /// Training batch size (`train_len` = single full batch).
    pub batch_size: usize,
    /// Mean pairwise churn across order-only replicas.
    pub churn: f64,
    /// Mean pairwise normalized-L2 weight distance.
    pub l2: f64,
    /// Mean accuracy (sanity signal).
    pub mean_accuracy: f64,
}

/// Runs the ordering experiment.
///
/// Uses the small CNN on the CIFAR-10 stand-in with a longer epoch budget
/// than the stability experiments: order-only noise starts at 1-ulp scale
/// (no amplification applies on the deterministic TPU datapath) and needs
/// time to grow through the training dynamics.
pub fn fig6(settings: &ExperimentSettings) -> Vec<OrderingPoint> {
    let mut task = TaskSpec::small_cnn_cifar10();
    task.augment = false; // per-sample augmentation would covary with order
    task.train.schedule = nnet::schedule::LrSchedule::Constant { lr: 0.05 };
    let prepared = PreparedTask::prepare(&task);
    let train_len = prepared.train_set().len();
    let device = Device::tpu_v2();
    let algo = detrand::Philox::from_seed(settings.base_seed); // fixed for all replicas

    let batch_sizes = [16usize, 64, train_len];
    let mut points = Vec::new();
    for &bs in &batch_sizes {
        let mut preds_sets = Vec::new();
        let mut weight_sets = Vec::new();
        let mut accs = Vec::new();
        // Optimizer *steps*, not epochs, drive both learning and the
        // amplification of order noise; give larger batches more epochs so
        // every arm sees a comparable step budget (the paper trains 200
        // epochs on the full dataset for every batch size).
        let epochs = match bs {
            b if b >= train_len => 300,
            b if b >= 64 => 60,
            _ => 30,
        };
        for replica in 0..settings.replicas {
            let mut cfg = task.train_config(settings);
            cfg.epochs = settings.scale_epochs(epochs);
            cfg.batch_size = bs;
            // The single varying factor: the shuffle stream's seed.
            cfg.shuffle_seed_override = Some(settings.base_seed ^ (0xF16_6000 + replica as u64));
            let mut exec = ExecutionContext::new(device, ExecutionMode::Default, 0);
            let mut net = task.build_model(&algo);
            Trainer::new(cfg)
                .fit(&mut net, prepared.train_set(), &mut exec, &algo, None)
                .expect("fig6 training run");
            let p = predict_classes(&mut net, prepared.test_set(), &mut exec, &algo, 64);
            let labels = match &prepared.test_set().targets {
                Targets::Classes(l) => l,
                Targets::Binary(_) => unreachable!(),
            };
            accs.push(nsmetrics::accuracy(&p, labels));
            preds_sets.push(p);
            weight_sets.push(net.flat_weights());
        }
        points.push(OrderingPoint {
            batch_size: bs,
            churn: pairwise_mean_churn(&preds_sets),
            l2: pairwise_mean_l2(&weight_sets),
            mean_accuracy: nsmetrics::mean(&accs),
        });
    }
    points
}

/// Renders the Figure-6 series.
pub fn render_fig6(points: &[OrderingPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.batch_size.to_string(),
                format!("{:.4}", p.churn),
                format!("{:.5}", p.l2),
                format!("{:.2}%", 100.0 * p.mean_accuracy),
            ]
        })
        .collect();
    render_table(
        "Figure 6: data-order-only nondeterminism on TPU (fixed seed, deterministic hardware)",
        &["Batch size", "churn", "l2", "mean acc"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_points_cover_full_batch() {
        // Smoke-scale run: the full experiment is exercised by the repro
        // harness; here we only verify plumbing and the full-batch case.
        let settings = ExperimentSettings {
            replicas: 2,
            epochs_scale: 0.01, // 1-3 epochs per arm
            ..ExperimentSettings::default()
        };
        let points = fig6(&settings);
        assert_eq!(points.len(), 3);
        let full = points.last().unwrap();
        // Full batch = one step per epoch; batch size equals train length.
        assert_eq!(full.batch_size, 400);
        for p in &points {
            assert!(p.churn >= 0.0 && p.l2 >= 0.0);
        }
    }
}
