//! Stability reports and text-table rendering.

use crate::runner::{Preds, PreparedTask, VariantRuns};
use crate::variant::NoiseVariant;
use hwsim::Device;
use nnet::trainer::Targets;
use nsmetrics::{mean, pairwise_mean_churn, pairwise_mean_l2, per_class_accuracy, stddev};
use serde::{Deserialize, Serialize};

/// Publishes a JSON report atomically (pretty-printed, via the same
/// write-temp-then-rename helper the checkpoint store uses), so an
/// interrupt mid-write can never leave a truncated `results/*.json` on
/// disk where a plotting script or CI comparison would read it.
///
/// # Errors
///
/// Propagates filesystem errors from the temp write or rename.
pub fn save_json(path: &std::path::Path, value: &serde_json::Value) -> std::io::Result<()> {
    let text = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    crate::resume::write_atomic(path, text.as_bytes())
}

/// The stability measures of one (task, device, variant) cell — one bar
/// group of the paper's Figures 1/2/5/9/10 and one cell of Table 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StabilityReport {
    /// Task name.
    pub task: String,
    /// Device name.
    pub device: String,
    /// Noise variant.
    pub variant: NoiseVariant,
    /// Replica count.
    pub replicas: usize,
    /// Mean test accuracy.
    pub mean_accuracy: f64,
    /// Standard deviation of test accuracy across replicas.
    pub std_accuracy: f64,
    /// Mean pairwise predictive churn.
    pub churn: f64,
    /// Mean pairwise normalized-L2 weight distance.
    pub l2: f64,
    /// Per-class accuracy stddev across replicas (empty for binary tasks).
    pub per_class_std: Vec<f64>,
    /// Largest per-class stddev divided by the top-line stddev (the
    /// paper's "up to 4×/23×" numbers). 0 when undefined.
    pub max_per_class_ratio: f64,
    /// Replica indices that exhausted their retry budget. Non-empty marks
    /// the cell as incomplete: its statistics cover fewer replicas than
    /// requested and should be read accordingly.
    pub failed_replicas: Vec<u32>,
    /// Replicas that needed at least one supervised retry (their results
    /// are still bit-identical to fault-free runs, so this is purely
    /// provenance, not a quality flag).
    pub retried_replicas: usize,
}

impl StabilityReport {
    /// Whether every requested replica contributed to the statistics.
    pub fn is_complete(&self) -> bool {
        self.failed_replicas.is_empty()
    }

    /// One-line human-readable summary. Incomplete cells are flagged.
    pub fn summary_line(&self) -> String {
        let mut line = format!(
            "{:<22} {:<10} {:<10} acc {:.2}%±{:.2} churn {:.4} l2 {:.4}",
            self.task,
            self.device,
            self.variant.label(),
            100.0 * self.mean_accuracy,
            100.0 * self.std_accuracy,
            self.churn,
            self.l2
        );
        if !self.failed_replicas.is_empty() {
            line.push_str(&format!(
                " [INCOMPLETE: {} of {} replicas failed]",
                self.failed_replicas.len(),
                self.replicas + self.failed_replicas.len()
            ));
        }
        line
    }
}

/// Builds the stability report for a variant's replica fleet.
pub fn stability_report(
    prepared: &PreparedTask,
    device: &Device,
    variant: NoiseVariant,
    runs: &VariantRuns,
) -> StabilityReport {
    let accs = runs.accuracies();
    let weights = runs.weight_sets();
    let l2 = pairwise_mean_l2(&weights);

    let (churn, per_class_std) = match &runs.results.first().map(|r| &r.preds) {
        Some(Preds::Classes(_)) => {
            let preds = runs
                .class_pred_sets()
                .expect("matched Preds::Classes above");
            let churn = pairwise_mean_churn(&preds);
            // Per-class accuracy stddev across replicas.
            let labels = match &prepared.test_set().targets {
                Targets::Classes(l) => l.clone(),
                Targets::Binary(_) => unreachable!("class preds imply class labels"),
            };
            let classes = prepared.classes();
            let mut per_class: Vec<Vec<f64>> = vec![Vec::new(); classes];
            for p in &preds {
                for (c, acc) in per_class_accuracy(p, &labels, classes)
                    .into_iter()
                    .enumerate()
                {
                    if let Some(a) = acc {
                        per_class[c].push(a);
                    }
                }
            }
            (churn, per_class.iter().map(|xs| stddev(xs)).collect())
        }
        Some(Preds::Binary(_)) => {
            let preds = runs
                .binary_pred_sets()
                .expect("matched Preds::Binary above");
            (pairwise_mean_churn(&preds), Vec::new())
        }
        None => (0.0, Vec::new()),
    };

    let overall_std = stddev(&accs);
    let max_ratio = if overall_std > 0.0 {
        per_class_std
            .iter()
            .fold(0.0f64, |m, &s| m.max(s / overall_std))
    } else {
        0.0
    };

    StabilityReport {
        task: prepared.spec.name.clone(),
        device: device.name().to_string(),
        variant,
        replicas: runs.results.len(),
        mean_accuracy: mean(&accs),
        std_accuracy: overall_std,
        churn,
        l2,
        per_class_std,
        max_per_class_ratio: max_ratio,
        failed_replicas: runs.failed_replicas(),
        retried_replicas: runs.retried_replicas(),
    }
}

/// Renders an aligned text table.
///
/// # Panics
///
/// Panics if any row's width differs from the header's.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let mut line = String::new();
    for (i, h) in headers.iter().enumerate() {
        line.push_str(&format!("{:<w$}  ", h, w = widths[i]));
    }
    out.push_str(line.trim_end());
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            line.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ReplicaResult;

    fn fake_runs(preds: Vec<Vec<u32>>, accs: Vec<f64>) -> VariantRuns {
        let statuses = vec![crate::runner::ReplicaStatus::Ok; preds.len()];
        VariantRuns {
            variant: NoiseVariant::AlgoImpl,
            results: preds
                .into_iter()
                .zip(accs)
                .enumerate()
                .map(|(i, (p, a))| ReplicaResult {
                    replica: i as u32,
                    accuracy: a,
                    preds: Preds::Classes(p),
                    weights: vec![1.0, 2.0, i as f32],
                    final_train_loss: 0.1,
                })
                .collect(),
            statuses,
        }
    }

    fn tiny_prepared() -> PreparedTask {
        use crate::task::{DataSource, TaskSpec};
        use nsdata::GaussianSpec;
        let mut t = TaskSpec::small_cnn_cifar10();
        t.data = DataSource::Gaussian(GaussianSpec {
            classes: 2,
            train_per_class: 4,
            test_per_class: 2,
            ..GaussianSpec::cifar10_sim()
        });
        PreparedTask::prepare(&t)
    }

    #[test]
    fn report_aggregates_fleet() {
        let prepared = tiny_prepared();
        // Test labels for 2 classes × 2/class: [0, 0, 1, 1].
        let runs = fake_runs(vec![vec![0, 0, 1, 1], vec![0, 1, 1, 1]], vec![1.0, 0.75]);
        let rep = stability_report(&prepared, &Device::v100(), NoiseVariant::AlgoImpl, &runs);
        assert_eq!(rep.replicas, 2);
        assert!((rep.mean_accuracy - 0.875).abs() < 1e-12);
        assert!((rep.churn - 0.25).abs() < 1e-12);
        assert_eq!(rep.per_class_std.len(), 2);
        // Class 0: accs (1.0, 0.5); class 1: (1.0, 1.0).
        assert!(rep.per_class_std[0] > rep.per_class_std[1]);
        assert!(rep.max_per_class_ratio > 1.0);
        assert!(rep.summary_line().contains("ALGO+IMPL"));
    }

    #[test]
    fn incomplete_cells_are_flagged() {
        let prepared = tiny_prepared();
        let mut runs = fake_runs(vec![vec![0, 0, 1, 1]], vec![1.0]);
        runs.statuses.push(crate::runner::ReplicaStatus::Failed {
            reason: "2 attempts exhausted; last: injected".into(),
        });
        let rep = stability_report(&prepared, &Device::v100(), NoiseVariant::AlgoImpl, &runs);
        assert!(!rep.is_complete());
        assert_eq!(rep.failed_replicas, vec![1]);
        assert_eq!(rep.replicas, 1, "statistics cover survivors only");
        assert!(
            rep.summary_line().contains("INCOMPLETE: 1 of 2"),
            "{}",
            rep.summary_line()
        );
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            "Demo",
            &["a", "bb"],
            &[
                vec!["x".into(), "y".into()],
                vec!["long".into(), "z".into()],
            ],
        );
        assert!(t.contains("Demo"));
        assert!(t.contains("long"));
        assert_eq!(t.lines().count(), 5);
    }

    #[test]
    #[should_panic(expected = "ragged table row")]
    fn ragged_rows_rejected() {
        render_table("t", &["a"], &[vec!["x".into(), "y".into()]]);
    }
}
